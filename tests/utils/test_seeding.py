"""The centralized seed-derivation helpers."""

import numpy as np
import pytest

from repro.utils import make_rng, spawn_rngs
from repro.utils.seeding import (
    child_seed_sequence,
    derive_rng,
    ensure_rng,
    shard_rngs,
    shard_seed_sequences,
)


def test_child_sequence_matches_spawn():
    # The stateless spawn-key construction equals SeedSequence.spawn — the
    # property that lets workers rebuild their streams without coordination.
    root = np.random.SeedSequence(2014)
    children = root.spawn(5)
    for index, child in enumerate(children):
        stateless = child_seed_sequence(2014, index)
        assert stateless.entropy == child.entropy
        assert stateless.spawn_key == child.spawn_key
        a = np.random.default_rng(stateless).random(8)
        b = np.random.default_rng(child).random(8)
        np.testing.assert_array_equal(a, b)


def test_derive_rng_is_deterministic_and_keyed():
    a = derive_rng(7, 1, 2).random(16)
    b = derive_rng(7, 1, 2).random(16)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, derive_rng(7, 1, 3).random(16))
    assert not np.array_equal(a, derive_rng(8, 1, 2).random(16))


def test_derive_rng_root_matches_default_rng():
    np.testing.assert_array_equal(
        derive_rng(123).random(8), np.random.default_rng(123).random(8)
    )


def test_no_cross_seed_collision():
    # The failure mode of the old `seed + index` arithmetic: stream (seed, 1)
    # must NOT equal stream (seed + 1, 0).
    np.random.default_rng(2014 + 1)
    collided = np.array_equal(derive_rng(2014, 1).random(16), derive_rng(2015, 0).random(16))
    assert not collided


def test_ensure_rng_passthrough_and_default():
    rng = np.random.default_rng(5)
    assert ensure_rng(rng) is rng
    np.testing.assert_array_equal(
        ensure_rng(None).random(4), np.random.default_rng(0).random(4)
    )
    np.testing.assert_array_equal(
        ensure_rng(None, 42).random(4), np.random.default_rng(42).random(4)
    )


def test_shard_helpers_and_legacy_alias():
    sequences = shard_seed_sequences(9, 3)
    assert [s.spawn_key for s in sequences] == [(0,), (1,), (2,)]
    ours = [rng.random(4) for rng in shard_rngs(9, 3)]
    legacy = [rng.random(4) for rng in spawn_rngs(9, 3)]
    for a, b in zip(ours, legacy):
        np.testing.assert_array_equal(a, b)
    draws = {tuple(values) for values in ours}
    assert len(draws) == 3  # independent streams


def test_make_rng_unseeded_still_works():
    assert isinstance(make_rng(), np.random.Generator)


@pytest.mark.parametrize("count", [1, 4])
def test_shard_rngs_count(count):
    assert len(shard_rngs(0, count)) == count
