"""End-to-end integration tests across substrates (sensors → bus → fusion → control)."""

import numpy as np
import pytest

from repro.attack import ExpectationPolicy, GreedyExtendPolicy, TruthfulPolicy
from repro.bus import AttackerNode, BusRound, SharedBus
from repro.core import FusionEngine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RandomSchedule,
    RoundConfig,
    run_round,
)
from repro.sensors import SensorSuite, UniformNoise, sensors_from_widths
from repro.vehicle import FixedSelector, LandShark, SafetyLimits


class TestSensorsToFusionPipeline:
    def test_many_rounds_all_contain_truth(self):
        rng = np.random.default_rng(0)
        suite = SensorSuite(sensors_from_widths([0.5, 1.0, 2.0, 4.0], noise=UniformNoise()))
        engine = FusionEngine(len(suite))
        for step in range(200):
            true_value = 5.0 + np.sin(step / 10.0)
            readings = suite.measure_all(true_value, rng)
            outcome = engine.process_round([r.interval for r in readings])
            assert outcome.contains_true_value(true_value)
            assert not outcome.detection.any_flagged

    def test_fusion_estimate_tracks_truth_better_than_worst_sensor(self):
        rng = np.random.default_rng(1)
        suite = SensorSuite(sensors_from_widths([0.5, 1.0, 4.0], noise=UniformNoise()))
        engine = FusionEngine(len(suite), f=1)
        fusion_errors = []
        worst_sensor_errors = []
        for _ in range(300):
            readings = suite.measure_all(10.0, rng)
            outcome = engine.process_round([r.interval for r in readings])
            fusion_errors.append(abs(outcome.estimate - 10.0))
            worst_sensor_errors.append(abs(readings[2].measurement - 10.0))
        assert np.mean(fusion_errors) < np.mean(worst_sensor_errors)


class TestBusAndFastSimulatorAgree:
    def test_same_policy_same_decision(self):
        # For identical readings and schedule, the message-level bus round and
        # the fast round simulator must produce the same fusion interval.
        rng_measure = np.random.default_rng(7)
        suite = SensorSuite(sensors_from_widths([0.4, 1.0, 2.0], noise=UniformNoise()))
        readings = suite.measure_all(3.0, rng_measure)
        intervals = [r.interval for r in readings]

        fast = run_round(
            intervals,
            RoundConfig(
                schedule=DescendingSchedule(),
                attacked_indices=(0,),
                policy=GreedyExtendPolicy(),
                f=1,
            ),
            np.random.default_rng(0),
        )

        bus = SharedBus()
        attacker = AttackerNode(compromised_indices=(0,), policy=GreedyExtendPolicy())
        bus_round = BusRound(suite, DescendingSchedule(), attacker, f=1)
        # Inject the same readings by monkeypatching measure_all through a
        # zero-noise equivalent: easier is to run the fast simulator on the
        # bus result's readings instead.
        bus_result = bus_round.run(bus, 3.0, np.random.default_rng(7))
        replay = run_round(
            [r.interval for r in bus_result.readings],
            RoundConfig(
                schedule=DescendingSchedule(),
                attacked_indices=(0,),
                policy=GreedyExtendPolicy(),
                f=1,
            ),
            np.random.default_rng(0),
        )
        assert bus_result.fusion.almost_equal(replay.fusion)
        assert fast.fusion.contains(3.0)

    def test_attacked_bus_round_consistency_over_time(self):
        rng = np.random.default_rng(3)
        suite = SensorSuite(sensors_from_widths([0.4, 1.0, 2.0], noise=UniformNoise()))
        bus = SharedBus()
        attacker = AttackerNode(
            compromised_indices=(0,),
            policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        bus_round = BusRound(suite, RandomSchedule(), attacker, f=1)
        for _ in range(40):
            result = bus_round.run(bus, 3.0, rng)
            assert result.fusion.contains(3.0)
            assert not result.detection.any_flagged


class TestVehicleClosedLoop:
    def test_landshark_under_attack_stays_controllable(self):
        rng = np.random.default_rng(4)
        shark = LandShark(
            name="shark",
            schedule=DescendingSchedule(),
            limits=SafetyLimits(target_speed=10.0),
            attacked_selector=FixedSelector((0,)),
            attack_policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        speeds = [shark.step(rng).true_speed for _ in range(250)]
        # Even under persistent attack the supervisor + controller keep the
        # true speed within a sane envelope around the target.
        assert min(speeds) > 8.0
        assert max(speeds) < 12.0

    def test_truthful_attacker_is_equivalent_to_no_attack(self):
        limits = SafetyLimits(target_speed=10.0)
        results = []
        for policy in (None, TruthfulPolicy()):
            rng = np.random.default_rng(11)
            shark = LandShark(
                name="shark",
                schedule=AscendingSchedule(),
                limits=limits,
                attacked_selector=FixedSelector((0,)) if policy is not None else None,
                attack_policy=policy,
            )
            results.append([shark.step(rng).fusion.width for _ in range(50)])
        assert results[0] == pytest.approx(results[1])
