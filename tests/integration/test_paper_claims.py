"""Integration tests encoding the paper's headline claims at reduced scale.

Each test here is a miniature version of one of the paper's experiments; the
full-scale versions live in ``benchmarks/``.  The assertions check the *shape*
of the results (orderings, zero/non-zero rates, bound satisfaction), which is
what the reproduction is expected to preserve.
"""

import numpy as np
import pytest

from repro.analysis import TABLE1_CONFIGURATIONS, figure1_intervals
from repro.attack import ExpectationPolicy, optimal_fusion_width
from repro.core import Interval, fuse, theorem2_bound
from repro.core.worst_case import worst_case_no_attack, worst_case_with_attack
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
    compare_schedules,
)
from repro.vehicle import CaseStudyConfig, run_case_study


class TestFigure1:
    def test_fusion_interval_grows_with_f(self):
        intervals = figure1_intervals()
        fusions = [fuse(intervals, f) for f in (0, 1, 2)]
        assert fusions[0].width < fusions[1].width < fusions[2].width
        for smaller, larger in zip(fusions, fusions[1:]):
            assert larger.contains_interval(smaller)


class TestTheoremClaims:
    def test_theorem2_bound_for_optimal_attacks(self):
        correct = [Interval(-1, 1), Interval(-2, 1.5), Interval(-1.5, 3)]
        for width in (0.5, 2.0, 10.0):
            attacked_width = optimal_fusion_width(correct, [width], f=1)
            assert attacked_width <= theorem2_bound(correct) + 1e-9

    def test_theorem3_largest_interval_attack_changes_nothing(self):
        widths = [1.0, 3.0, 6.0]
        baseline = worst_case_no_attack(widths, f=1, resolution=0.5)
        attacked = worst_case_with_attack(widths, [2], f=1, resolution=0.5)
        assert attacked.width == pytest.approx(baseline.width, abs=1e-9)

    def test_theorem4_smallest_interval_attack_at_least_as_strong_as_any(self):
        widths = [1.0, 3.0, 6.0]
        smallest = worst_case_with_attack(widths, [0], f=1, resolution=0.5)
        for other in ([1], [2]):
            result = worst_case_with_attack(widths, other, f=1, resolution=0.5)
            assert smallest.width >= result.width - 1e-9


class TestTable1Shape:
    @pytest.mark.parametrize("entry", TABLE1_CONFIGURATIONS[:4], ids=lambda e: f"n{e.n}-fa{e.fa}")
    def test_descending_never_better_for_the_system(self, entry):
        config = ScheduleComparisonConfig(lengths=entry.lengths, fa=entry.fa, positions=3)
        comparison = compare_schedules(config, [AscendingSchedule(), DescendingSchedule()])
        assert (
            comparison.expected_width("descending")
            >= comparison.expected_width("ascending") - 1e-9
        )

    def test_gap_widens_with_length_disparity(self):
        # The paper notes the two schedules are close for comparable lengths
        # and drift apart when lengths differ a lot.
        similar = ScheduleComparisonConfig(lengths=(5.0, 11.0, 11.0), fa=1, positions=3)
        disparate = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)
        schedules = [AscendingSchedule(), DescendingSchedule()]
        gap_similar = (
            compare_schedules(similar, schedules).expected_width("descending")
            - compare_schedules(similar, schedules).expected_width("ascending")
        )
        gap_disparate = (
            compare_schedules(disparate, schedules).expected_width("descending")
            - compare_schedules(disparate, schedules).expected_width("ascending")
        )
        assert gap_disparate >= gap_similar - 1e-9


class TestTable2Shape:
    def test_schedule_ordering_of_violations(self):
        config = CaseStudyConfig(n_steps=120, n_vehicles=2, seed=5)
        result = run_case_study(config)
        total = lambda name: (  # noqa: E731
            result.for_schedule(name).upper_violations + result.for_schedule(name).lower_violations
        )
        assert total("ascending") == 0
        assert total("descending") > 0
        assert total("descending") >= total("random") >= total("ascending")


class TestStealthInvariant:
    def test_expectation_attacker_is_never_detected_across_many_rounds(self):
        from repro.scheduling import RoundConfig, run_round

        rng = np.random.default_rng(0)
        policy = ExpectationPolicy(true_value_positions=2, placement_positions=2)
        for seed in range(30):
            local = np.random.default_rng(seed)
            true_value = float(local.uniform(-5, 5))
            widths = [0.5, 1.0, 2.0, 4.0]
            correct = []
            for width in widths:
                lo = true_value - width * float(local.uniform(0, 1))
                correct.append(Interval(lo, lo + width))
            # Ensure correctness (they all contain the true value by construction).
            assert all(s.contains(true_value) for s in correct)
            for schedule in (AscendingSchedule(), DescendingSchedule()):
                result = run_round(
                    correct,
                    RoundConfig(schedule=schedule, attacked_indices=(0,), policy=policy, f=1),
                    rng,
                )
                assert not result.attacker_detected
                assert result.fusion.contains(true_value)
