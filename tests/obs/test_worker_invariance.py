"""The telemetry layer's second contract: merged telemetry is
worker-count-invariant.

Per-shard telemetry is collected *inside* the worker
(:func:`repro.runner.runner.execute_task_traced`) and grafted back in plan
order, so the merged span tree (structure + attrs, durations aside) and
every merged counter/histogram count are identical for 1 or 4 workers —
exactly like the payloads themselves.
"""

import json

from repro import obs
from repro.runner import run_scenario
from repro.scenarios import ComparisonCase, ComparisonScenario


def scenario(name: str) -> ComparisonScenario:
    return ComparisonScenario(
        name=name,
        engine="batch",
        samples=4_000,
        shard_samples=1_000,
        cases=(ComparisonCase(label="n3-fa1", lengths=(5.0, 11.0, 17.0), fa=1),),
    )


def shape(node: dict) -> dict:
    """A span tree with durations (and the ``workers`` knob, which the root
    span legitimately records) erased — everything else must be invariant."""
    attrs = {key: value for key, value in node["attrs"].items() if key != "workers"}
    return {
        "name": node["name"],
        "attrs": attrs,
        "children": [shape(child) for child in node["children"]],
    }


def metric_counts(snapshot: dict) -> dict:
    """Merged metric values, histogram sums dropped (timing varies)."""
    metrics = snapshot["metrics"]
    return {
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
        "histograms": [
            {key: row[key] for key in ("name", "labels", "bounds", "counts", "count")}
            for row in metrics["histograms"]
        ],
    }


def traced_run(workers: int):
    with obs.collect() as session:
        payload = run_scenario(scenario("obs-worker-invariance"), workers=workers, store=None).payload
    return payload, session.snapshot()


def test_span_tree_and_counts_identical_for_1_and_4_workers():
    payload_1, snapshot_1 = traced_run(1)
    payload_4, snapshot_4 = traced_run(4)
    assert json.dumps(payload_1, sort_keys=True) == json.dumps(payload_4, sort_keys=True)
    trees_1 = [shape(node) for node in snapshot_1["spans"]]
    trees_4 = [shape(node) for node in snapshot_4["spans"]]
    assert trees_1 == trees_4
    assert metric_counts(snapshot_1) == metric_counts(snapshot_4)


def test_shard_spans_arrive_in_plan_order():
    _, snapshot = traced_run(4)
    (root,) = snapshot["spans"]
    assert root["name"] == "runner.run_scenario"
    shard_indices = [
        child["attrs"]["index"] for child in root["children"] if child["name"] == "runner.shard"
    ]
    assert shard_indices == sorted(shard_indices)
    assert len(shard_indices) == 4  # 4000 samples / 1000 shard_samples
