"""The telemetry layer's first contract: tracing never changes a payload.

Every registered engine runs the same rounds twice — once inside an
``obs.collect()`` scope, once without — and the result arrays must be
byte-equal.  Telemetry times with monotonic clocks only; any instrumented
code path that touched an RNG (or reordered draws) would fail here.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.engine import get_engine, list_engines
from repro.runner import run_scenario
from repro.scenarios import ComparisonCase, ComparisonScenario
from repro.scheduling.comparison import ScheduleComparisonConfig
from repro.scheduling.schedule import FixedSchedule

ENGINES = list_engines()

CONFIG = ScheduleComparisonConfig(lengths=(5.0, 8.0, 11.0), fa=1, attacked_indices=(1,))


def result_bytes(result) -> tuple:
    return (
        result.fusion_lo.tobytes(),
        result.fusion_hi.tobytes(),
        result.widths.tobytes(),
        result.valid.tobytes(),
        result.attacker_detected.tobytes(),
    )


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("attack", ["stretch", "expectation"])
def test_run_rounds_bit_identical_traced_vs_untraced(engine_name, attack):
    engine = get_engine(engine_name)

    def run():
        return engine.run_rounds(
            CONFIG,
            FixedSchedule((0, 1, 2)),
            attack,
            None,
            samples=64,
            rng=np.random.default_rng(42),
        )

    untraced = result_bytes(run())
    with obs.collect() as session:
        traced = result_bytes(run())
    assert traced == untraced
    # ... and telemetry actually recorded the work it watched.
    counters = {
        (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
        for row in session.snapshot()["metrics"]["counters"]
    }
    assert counters[("repro_engine_samples_total", (("engine", engine_name),))] == 64


@pytest.mark.parametrize("engine_name", ENGINES)
def test_run_many_bit_identical_traced_vs_untraced(engine_name):
    engine = get_engine(engine_name)

    def run():
        return engine.run_many(
            CONFIG,
            FixedSchedule((0, 1, 2)),
            "stretch",
            None,
            budgets=[32, 16],
            rngs=[np.random.default_rng(1), np.random.default_rng(2)],
        )

    untraced = [result_bytes(result) for result in run()]
    with obs.collect():
        traced = [result_bytes(result) for result in run()]
    assert traced == untraced


def test_scenario_payload_bit_identical_traced_vs_untraced():
    spec = ComparisonScenario(
        name="obs-bit-identity",
        engine="batch",
        samples=2_000,
        shard_samples=500,
        cases=(ComparisonCase(label="n3-fa1", lengths=(5.0, 11.0, 17.0), fa=1),),
    )
    untraced = run_scenario(spec, store=None).payload
    with obs.collect():
        traced = run_scenario(spec, store=None).payload
    assert json.dumps(traced, sort_keys=True) == json.dumps(untraced, sort_keys=True)
