"""Metric primitives: counters, gauges, histograms, registry, exposition."""

import math
import pickle

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, Registry, render_prometheus


class TestCounter:
    def test_increments_and_rejects_decrease(self):
        counter = Counter("c_total", {})
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_registry_get_or_create_is_idempotent(self):
        registry = Registry()
        assert registry.counter("c_total", engine="batch") is registry.counter(
            "c_total", engine="batch"
        )
        assert registry.counter("c_total", engine="batch") is not registry.counter(
            "c_total", engine="fused"
        )

    def test_kind_mismatch_raises(self):
        registry = Registry()
        registry.counter("metric")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("metric")


class TestGauge:
    def test_set_and_set_max(self):
        gauge = Gauge("g", {})
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        gauge.set_max(1.0)
        assert gauge.value == 2.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0


class TestHistogram:
    def test_default_buckets_are_fixed_and_sorted(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(100.0)

    def test_observe_counts_and_overflow(self):
        histogram = Histogram("h", {}, bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(55.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", {}, bounds=(2.0, 1.0))

    def test_quantile_is_bucket_upper_bound(self):
        histogram = Histogram("h", {}, bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 10.0
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_edge_cases(self):
        empty = Histogram("h", {}, bounds=(1.0,))
        assert math.isnan(empty.quantile(0.5))
        with pytest.raises(ValueError):
            empty.quantile(0.0)
        overflow = Histogram("h", {}, bounds=(1.0,))
        overflow.observe(99.0)
        assert overflow.quantile(0.5) == math.inf


class TestMerge:
    def test_merge_is_exact_however_observations_shard(self):
        values = [10.0 ** (i % 7 - 3) for i in range(40)]
        whole = Registry()
        for value in values:
            whole.histogram("h").observe(value)
            whole.counter("c_total").inc()
        sharded = Registry()
        for start in range(0, 40, 10):
            shard = Registry()
            for value in values[start : start + 10]:
                shard.histogram("h").observe(value)
                shard.counter("c_total").inc()
            sharded.merge(shard.snapshot())
        merged, direct = sharded.snapshot(), whole.snapshot()
        # Integer state (bucket/observation/counter counts) is exactly equal;
        # only the float `sum` is association-order sensitive.
        merged_sum = merged["histograms"][0].pop("sum")
        direct_sum = direct["histograms"][0].pop("sum")
        assert merged == direct
        assert merged_sum == pytest.approx(direct_sum, rel=1e-12)

    def test_merge_gauges_keep_high_water_mark(self):
        left, right = Registry(), Registry()
        left.gauge("g").set(3.0)
        right.gauge("g").set(7.0)
        left.merge(right.snapshot())
        assert left.gauge("g").value == 7.0

    def test_mismatched_bounds_refuse_to_merge(self):
        left, right = Registry(), Registry()
        left.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        right.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds differ"):
            left.merge(right.snapshot())

    def test_snapshot_is_picklable(self):
        registry = Registry()
        registry.counter("c_total", engine="batch").inc(3)
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestPrometheusExposition:
    def test_counter_gauge_histogram_render(self):
        registry = Registry()
        registry.counter("repro_requests_total", route="run").inc(3)
        registry.gauge("repro_inflight").set(2)
        histogram = registry.histogram("repro_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_requests_total{route="run"} 3' in lines
        assert "# TYPE repro_inflight gauge" in lines
        assert "repro_inflight 2" in lines
        assert "# TYPE repro_seconds histogram" in lines
        # Buckets are cumulative and end at +Inf == _count.
        assert 'repro_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_seconds_bucket{le="1"} 2' in lines
        assert 'repro_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_multiple_registries_merge_in_render(self):
        left, right = Registry(), Registry()
        left.counter("c_total").inc(1)
        right.counter("c_total").inc(2)
        assert "c_total 3" in render_prometheus(left, right).splitlines()

    def test_label_values_are_escaped(self):
        registry = Registry()
        registry.counter("c_total", path='a"b\\c').inc()
        assert 'path="a\\"b\\\\c"' in render_prometheus(registry)
