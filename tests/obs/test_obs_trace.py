"""Span tracing: no-op default, nesting, grafting, JSONL round-trip."""

import json
import threading

import pytest

from repro import obs
from repro.core.exceptions import ExperimentError
from repro.obs.report import build_perf_report, load_trace


class TestDisabledPath:
    def test_everything_is_a_noop_outside_collect(self):
        assert not obs.enabled()
        with obs.span("engine.run", engine="batch"):
            obs.add("c_total", 1)
            obs.observe("h", 0.1)
            obs.set_gauge("g", 2.0)
        obs.event("late", 0.5)
        assert obs.active() is None

    def test_span_returns_the_shared_noop(self):
        assert obs.span("a") is obs.span("b")


class TestCollection:
    def test_spans_nest_and_time(self):
        with obs.collect() as session:
            with obs.span("outer", level="1"):
                with obs.span("inner"):
                    pass
        (root,) = session.snapshot()["spans"]
        assert root["name"] == "outer"
        assert root["attrs"] == {"level": "1"}
        (child,) = root["children"]
        assert child["name"] == "inner"
        assert 0.0 <= child["duration_s"] <= root["duration_s"]

    def test_name_is_positional_only_so_attrs_may_shadow_it(self):
        # Instrumentation regularly wants a `name=` attribute (store.load
        # tags the scenario name); the span's own name must not collide.
        with obs.collect() as session:
            with obs.span("store.load", name="table1-row4"):
                pass
            obs.event("serve.request", 0.01, name="table1-row4")
        spans = session.snapshot()["spans"]
        assert [node["attrs"]["name"] for node in spans] == ["table1-row4"] * 2

    def test_metric_helpers_record_into_the_scope(self):
        with obs.collect() as session:
            obs.add("c_total", 2, engine="batch")
            obs.observe("h", 0.1)
            obs.set_gauge("g", 7.0)
        metrics = session.snapshot()["metrics"]
        assert metrics["counters"][0]["value"] == 2
        assert metrics["gauges"][0]["value"] == 7.0
        assert metrics["histograms"][0]["count"] == 1

    def test_scopes_nest_and_restore(self):
        with obs.collect() as outer:
            obs.add("c_total", 1)
            with obs.collect() as inner:
                obs.add("c_total", 10)
            obs.add("c_total", 1)
        assert inner.snapshot()["metrics"]["counters"][0]["value"] == 10
        assert outer.snapshot()["metrics"]["counters"][0]["value"] == 2

    def test_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["enabled"] = obs.enabled()

        with obs.collect():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["enabled"] is False


class TestGraft:
    def test_graft_attaches_spans_and_merges_metrics(self):
        with obs.collect() as shard:
            with obs.span("runner.shard", index=0):
                obs.add("c_total", 5)
        snapshot = shard.snapshot()
        with obs.collect() as merged:
            with obs.span("runner.run_scenario"):
                obs.graft(snapshot)
                obs.graft(snapshot)
        (root,) = merged.snapshot()["spans"]
        assert [child["name"] for child in root["children"]] == ["runner.shard"] * 2
        assert merged.snapshot()["metrics"]["counters"][0]["value"] == 10

    def test_graft_outside_collect_is_a_noop(self):
        obs.graft({"spans": [{"name": "x", "attrs": {}, "duration_s": 0.0, "children": []}]})


class TestJsonlRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.collect() as session:
            with obs.span("engine.run", engine="batch"):
                obs.add("repro_engine_samples_total", 100, engine="batch")
                obs.observe("repro_request_seconds", 0.25)
            session.write_jsonl(path, meta={"scenario": "t"})
        records = load_trace(path)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "meta"
        assert records[0]["version"] == 1 and records[0]["scenario"] == "t"
        assert set(kinds) == {"meta", "span", "counter", "histogram"}

    def test_perf_report_aggregates_the_artifact(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.collect() as session:
            with obs.span("runner.run_scenario"):
                with obs.span("engine.run", engine="batch"):
                    obs.add("repro_engine_samples_total", 500, engine="batch")
            obs.observe("repro_request_seconds", 0.25)
            session.write_jsonl(path)
        payload = build_perf_report(path)
        by_span = {row["span"]: row for row in payload["spans"]}
        assert by_span["engine.run"]["layer"] == "engine"
        assert by_span["runner.run_scenario"]["layer"] == "runner"
        assert payload["throughput"]["samples"] == 500
        (histogram,) = payload["histograms"]
        assert histogram["count"] == 1 and histogram["p50_ms"] <= histogram["p99_ms"]

    def test_load_trace_error_paths(self, tmp_path):
        with pytest.raises(ExperimentError, match="--trace PATH"):
            load_trace(None)
        with pytest.raises(ExperimentError, match="does not exist"):
            load_trace(tmp_path / "missing.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(ExperimentError, match="line 1 is not JSON"):
            load_trace(bad)
        nokind = tmp_path / "nokind.jsonl"
        nokind.write_text(json.dumps({"spam": 1}) + "\n")
        with pytest.raises(ExperimentError, match="no 'kind'"):
            load_trace(nokind)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(ExperimentError, match="is empty"):
            load_trace(empty)
