"""Unit tests for the safety supervisor and limits."""

import pytest

from repro.core import Interval, VehicleError
from repro.vehicle import SafetyLimits, SafetySupervisor


class TestSafetyLimits:
    def test_limits_derive_from_target_and_margins(self):
        limits = SafetyLimits(target_speed=10.0, delta_upper=0.5, delta_lower=0.5)
        assert limits.upper_limit == pytest.approx(10.5)
        assert limits.lower_limit == pytest.approx(9.5)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(VehicleError):
            SafetyLimits(target_speed=0.0)
        with pytest.raises(VehicleError):
            SafetyLimits(target_speed=10.0, delta_upper=0.0)
        with pytest.raises(VehicleError):
            SafetyLimits(target_speed=10.0, delta_lower=-0.5)


class TestSafetySupervisor:
    def setup_method(self):
        self.limits = SafetyLimits(target_speed=10.0)
        self.supervisor = SafetySupervisor(self.limits)

    def test_no_violation_passes_controller_command(self):
        decision = self.supervisor.review(Interval(9.8, 10.2), controller_command=0.7)
        assert not decision.any_violation
        assert not decision.preempted
        assert decision.command == pytest.approx(0.7)

    def test_upper_violation_preempts_with_braking(self):
        decision = self.supervisor.review(Interval(9.9, 10.8), controller_command=0.7)
        assert decision.upper_violation
        assert not decision.lower_violation
        assert decision.preempted
        assert decision.command < 0.0

    def test_lower_violation_preempts_with_acceleration(self):
        decision = self.supervisor.review(Interval(9.2, 10.1), controller_command=-0.7)
        assert decision.lower_violation
        assert decision.preempted
        assert decision.command > 0.0

    def test_double_violation_prefers_braking(self):
        decision = self.supervisor.review(Interval(9.0, 11.0), controller_command=0.0)
        assert decision.upper_violation and decision.lower_violation
        assert decision.command < 0.0

    def test_counters_accumulate(self):
        self.supervisor.review(Interval(9.8, 10.2), 0.0)
        self.supervisor.review(Interval(9.0, 10.2), 0.0)
        self.supervisor.review(Interval(9.8, 11.0), 0.0)
        assert self.supervisor.checks == 3
        assert self.supervisor.lower_violations == 1
        assert self.supervisor.upper_violations == 1

    def test_reset_clears_counters(self):
        self.supervisor.review(Interval(9.0, 11.0), 0.0)
        self.supervisor.reset()
        assert self.supervisor.checks == 0
        assert self.supervisor.upper_violations == 0
        assert self.supervisor.lower_violations == 0

    def test_boundary_is_not_a_violation(self):
        decision = self.supervisor.review(Interval(9.5, 10.5), 0.0)
        assert not decision.any_violation

    def test_invalid_preempt_gain_rejected(self):
        with pytest.raises(VehicleError):
            SafetySupervisor(self.limits, preempt_gain=0.0)
