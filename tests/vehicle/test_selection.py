"""Unit tests for attacked-sensor selection strategies."""

import numpy as np
import pytest

from repro.core import ExperimentError
from repro.vehicle import (
    FixedSelector,
    MostPreciseSelector,
    NoAttackSelector,
    RandomSensorSelector,
    landshark_suite,
    selector_from_spec,
)


class TestSelectors:
    def setup_method(self):
        self.suite = landshark_suite()
        self.rng = np.random.default_rng(0)

    def test_no_attack(self):
        assert NoAttackSelector().select(self.suite, self.rng) == ()

    def test_fixed(self):
        assert FixedSelector((2, 0)).select(self.suite, self.rng) == (0, 2)

    def test_fixed_out_of_range(self):
        with pytest.raises(ExperimentError):
            FixedSelector((9,)).select(self.suite, self.rng)

    def test_most_precise_picks_an_encoder(self):
        (index,) = MostPreciseSelector().select(self.suite, self.rng)
        assert self.suite.widths[index] == pytest.approx(0.2)

    def test_most_precise_count(self):
        indices = MostPreciseSelector(count=2).select(self.suite, self.rng)
        assert len(indices) == 2
        assert all(self.suite.widths[i] == pytest.approx(0.2) for i in indices)

    def test_most_precise_count_validation(self):
        with pytest.raises(ExperimentError):
            MostPreciseSelector(count=9).select(self.suite, self.rng)

    def test_random_single(self):
        for _ in range(20):
            (index,) = RandomSensorSelector().select(self.suite, self.rng)
            assert 0 <= index < len(self.suite)

    def test_random_covers_all_sensors_eventually(self):
        chosen = {RandomSensorSelector().select(self.suite, self.rng)[0] for _ in range(200)}
        assert chosen == {0, 1, 2, 3}

    def test_random_count_validation(self):
        with pytest.raises(ExperimentError):
            RandomSensorSelector(count=0).select(self.suite, self.rng)


class TestSelectorFromSpec:
    def test_string_specs(self):
        assert isinstance(selector_from_spec("random"), RandomSensorSelector)
        assert isinstance(selector_from_spec("most_precise"), MostPreciseSelector)
        assert isinstance(selector_from_spec("none"), NoAttackSelector)

    def test_index_specs(self):
        assert selector_from_spec(2) == FixedSelector(indices=(2,))
        assert selector_from_spec((1, 3)) == FixedSelector(indices=(1, 3))

    def test_unknown_spec_rejected(self):
        with pytest.raises(ExperimentError):
            selector_from_spec("everything")
