"""Unit tests for the LandShark vehicle assembly."""

import numpy as np
import pytest

from repro.attack import ExpectationPolicy
from repro.core import VehicleError
from repro.scheduling import AscendingSchedule, DescendingSchedule
from repro.vehicle import FixedSelector, LandShark, SafetyLimits


def make_landshark(**kwargs) -> LandShark:
    defaults = dict(
        name="shark",
        schedule=AscendingSchedule(),
        limits=SafetyLimits(target_speed=10.0),
    )
    defaults.update(kwargs)
    return LandShark(**defaults)


class TestLandSharkConstruction:
    def test_needs_name(self):
        with pytest.raises(VehicleError):
            make_landshark(name="")

    def test_default_suite_is_the_case_study_suite(self):
        shark = make_landshark()
        assert sorted(shark.suite.widths) == pytest.approx([0.2, 0.2, 1.0, 2.0])

    def test_initial_speed_defaults_to_target(self):
        assert make_landshark().true_speed == pytest.approx(10.0)

    def test_initial_position(self):
        assert make_landshark(initial_position=-5.0).position == pytest.approx(-5.0)


class TestLandSharkStepping:
    def test_step_without_attack_never_violates(self):
        rng = np.random.default_rng(0)
        shark = make_landshark()
        for _ in range(50):
            record = shark.step(rng)
            assert not record.upper_violation
            assert not record.lower_violation
            assert record.fusion.contains(record.true_speed)

    def test_speed_stays_near_target_without_attack(self):
        rng = np.random.default_rng(1)
        shark = make_landshark()
        for _ in range(200):
            shark.step(rng)
        assert shark.true_speed == pytest.approx(10.0, abs=0.3)

    def test_step_records_increment(self):
        rng = np.random.default_rng(2)
        shark = make_landshark()
        records = [shark.step(rng) for _ in range(3)]
        assert [r.step_index for r in records] == [0, 1, 2]

    def test_attacked_descending_can_violate(self):
        rng = np.random.default_rng(3)
        shark = make_landshark(
            schedule=DescendingSchedule(),
            attacked_selector=FixedSelector((0,)),
            attack_policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        violations = sum(
            1 for _ in range(120) if (lambda r: r.upper_violation or r.lower_violation)(shark.step(rng))
        )
        assert violations > 0

    def test_attacked_ascending_never_violates(self):
        rng = np.random.default_rng(4)
        shark = make_landshark(
            schedule=AscendingSchedule(),
            attacked_selector=FixedSelector((0,)),
            attack_policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        for _ in range(120):
            record = shark.step(rng)
            assert not record.upper_violation
            assert not record.lower_violation

    def test_fusion_contains_true_speed_even_under_attack(self):
        rng = np.random.default_rng(5)
        shark = make_landshark(
            schedule=DescendingSchedule(),
            attacked_selector=FixedSelector((0,)),
            attack_policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        for _ in range(80):
            record = shark.step(rng)
            assert record.fusion.contains(record.true_speed)

    def test_supervisor_counters_match_records(self):
        rng = np.random.default_rng(6)
        shark = make_landshark(
            schedule=DescendingSchedule(),
            attacked_selector=FixedSelector((0,)),
            attack_policy=ExpectationPolicy(true_value_positions=2, placement_positions=2),
        )
        upper = lower = 0
        for _ in range(100):
            record = shark.step(rng)
            upper += record.upper_violation
            lower += record.lower_violation
        assert shark.supervisor.upper_violations == upper
        assert shark.supervisor.lower_violations == lower
        assert shark.supervisor.checks == 100
