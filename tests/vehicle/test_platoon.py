"""Unit tests for the three-vehicle platoon."""

import numpy as np
import pytest

from repro.core import VehicleError
from repro.scheduling import AscendingSchedule
from repro.vehicle import Platoon, PlatoonConfig


class TestPlatoonConfig:
    def test_defaults_match_paper(self):
        config = PlatoonConfig()
        assert config.target_speed == 10.0
        assert config.delta_upper == 0.5
        assert config.delta_lower == 0.5
        assert config.n_vehicles == 3

    def test_limits(self):
        limits = PlatoonConfig().limits()
        assert limits.upper_limit == pytest.approx(10.5)
        assert limits.lower_limit == pytest.approx(9.5)

    def test_invalid_vehicle_count(self):
        with pytest.raises(VehicleError):
            PlatoonConfig(n_vehicles=0)

    def test_invalid_gap(self):
        with pytest.raises(VehicleError):
            PlatoonConfig(initial_gap=0.0)

    def test_at_most_one_attacked_sensor(self):
        with pytest.raises(VehicleError):
            PlatoonConfig(attacked_indices=(0, 1))


class TestPlatoon:
    def test_vehicles_start_spaced(self):
        platoon = Platoon(PlatoonConfig(initial_gap=5.0), AscendingSchedule())
        assert platoon.gaps() == pytest.approx((5.0, 5.0))

    def test_step_returns_record_per_vehicle(self):
        rng = np.random.default_rng(0)
        platoon = Platoon(PlatoonConfig(), AscendingSchedule())
        step = platoon.step(rng)
        assert len(step.records) == 3
        assert len(step.gaps) == 2

    def test_run_produces_requested_steps(self):
        rng = np.random.default_rng(0)
        platoon = Platoon(PlatoonConfig(n_vehicles=2), AscendingSchedule())
        steps = platoon.run(10, rng)
        assert len(steps) == 10
        assert steps[-1].step_index == 9

    def test_run_rejects_non_positive_steps(self):
        platoon = Platoon(PlatoonConfig(), AscendingSchedule())
        with pytest.raises(VehicleError):
            platoon.run(0, np.random.default_rng(0))

    def test_gaps_stay_safe_without_attack(self):
        rng = np.random.default_rng(1)
        platoon = Platoon(PlatoonConfig(), AscendingSchedule())
        steps = platoon.run(150, rng)
        assert min(step.min_gap for step in steps) > 2.0

    def test_no_violations_without_attack(self):
        rng = np.random.default_rng(2)
        platoon = Platoon(PlatoonConfig(), AscendingSchedule())
        for step in platoon.run(100, rng):
            assert not step.any_upper_violation
            assert not step.any_lower_violation

    def test_single_vehicle_min_gap_is_infinite(self):
        rng = np.random.default_rng(3)
        platoon = Platoon(PlatoonConfig(n_vehicles=1), AscendingSchedule())
        step = platoon.step(rng)
        assert step.min_gap == float("inf")
