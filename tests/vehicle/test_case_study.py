"""Unit tests for the Table II case-study driver (reduced scale for speed)."""

import numpy as np
import pytest

from repro.core import ExperimentError
from repro.scheduling import AscendingSchedule, DescendingSchedule
from repro.vehicle import CaseStudyConfig, ViolationStats, run_case_study, run_case_study_for_schedule


class TestCaseStudyConfig:
    def test_defaults_match_paper(self):
        config = CaseStudyConfig()
        assert config.target_speed == 10.0
        assert config.delta_upper == 0.5
        assert config.delta_lower == 0.5
        assert config.n_vehicles == 3

    def test_invalid_steps_rejected(self):
        with pytest.raises(ExperimentError):
            CaseStudyConfig(n_steps=0)

    def test_invalid_attacked_sensor_rejected(self):
        with pytest.raises(ExperimentError):
            CaseStudyConfig(attacked_sensor="everything")

    def test_platoon_config(self):
        platoon_config = CaseStudyConfig().platoon_config()
        assert platoon_config.n_vehicles == 3
        assert platoon_config.target_speed == 10.0


class TestViolationStats:
    def test_percentages(self):
        stats = ViolationStats("descending", rounds=200, upper_violations=34, lower_violations=30)
        assert stats.upper_percentage == pytest.approx(17.0)
        assert stats.lower_percentage == pytest.approx(15.0)

    def test_zero_rounds(self):
        stats = ViolationStats("ascending", rounds=0, upper_violations=0, lower_violations=0)
        assert stats.upper_percentage == 0.0
        assert stats.lower_percentage == 0.0


class TestCaseStudyRuns:
    def small_config(self, **overrides) -> CaseStudyConfig:
        defaults = dict(n_steps=40, n_vehicles=2, seed=11)
        defaults.update(overrides)
        return CaseStudyConfig(**defaults)

    def test_ascending_has_zero_violations(self):
        stats = run_case_study_for_schedule(
            self.small_config(), AscendingSchedule(), rng=np.random.default_rng(0)
        )
        assert stats.upper_violations == 0
        assert stats.lower_violations == 0

    def test_descending_has_violations(self):
        stats = run_case_study_for_schedule(
            self.small_config(n_steps=60), DescendingSchedule(), rng=np.random.default_rng(0)
        )
        assert stats.upper_violations + stats.lower_violations > 0

    def test_rounds_counted_per_vehicle(self):
        config = self.small_config(n_steps=25, n_vehicles=3)
        stats = run_case_study_for_schedule(config, AscendingSchedule(), rng=np.random.default_rng(0))
        assert stats.rounds == 25 * 3

    def test_full_case_study_ordering(self):
        config = self.small_config(n_steps=80, n_vehicles=2)
        result = run_case_study(config)
        ascending = result.for_schedule("ascending")
        descending = result.for_schedule("descending")
        random_row = result.for_schedule("random")
        total = lambda row: row.upper_violations + row.lower_violations  # noqa: E731
        # Table II shape: Ascending is safest, Descending is worst, Random in between.
        assert total(ascending) == 0
        assert total(descending) > total(random_row) >= total(ascending)

    def test_unknown_schedule_lookup_rejected(self):
        result = run_case_study(self.small_config(n_steps=5, n_vehicles=1), schedules=(AscendingSchedule(),))
        with pytest.raises(ExperimentError):
            result.for_schedule("descending")

    def test_most_precise_attack_is_stronger_than_random(self):
        base = dict(n_steps=60, n_vehicles=2, seed=3)
        random_cfg = CaseStudyConfig(attacked_sensor="random", **base)
        precise_cfg = CaseStudyConfig(attacked_sensor="most_precise", **base)
        random_stats = run_case_study_for_schedule(
            random_cfg, DescendingSchedule(), rng=np.random.default_rng(1)
        )
        precise_stats = run_case_study_for_schedule(
            precise_cfg, DescendingSchedule(), rng=np.random.default_rng(1)
        )
        total = lambda row: row.upper_violations + row.lower_violations  # noqa: E731
        assert total(precise_stats) >= total(random_stats)
