"""Seeded regression pin of the scalar Table II reference numbers.

The scalar case study is the oracle the batched engine is validated
against, so its seeded output must not drift silently under refactors.
These counts were produced by the scalar driver at a reduced-but-stable
scale (60 steps, 2 vehicles, seed 2014); the percentages land close to the
paper's Table II (Ascending 0/0, Descending 17.42/17.65, Random 5.72/5.97)
and preserve its Ascending < Random < Descending ordering exactly.

The per-schedule streams are derived with
:func:`repro.utils.seeding.derive_rng` (SeedSequence spawn keys); the pins
were recomputed when that replaced the collision-prone ``seed + index``
arithmetic.
"""

import pytest

from repro.vehicle import CaseStudyConfig, run_case_study

#: (upper_violations, lower_violations) per schedule for the pinned config.
PINNED_COUNTS = {
    "ascending": (0, 0),
    "descending": (27, 24),
    "random": (11, 9),
}

PINNED_CONFIG = dict(n_steps=60, n_vehicles=2, seed=2014)


@pytest.fixture(scope="module")
def pinned_result():
    return run_case_study(CaseStudyConfig(**PINNED_CONFIG), engine="scalar")


def test_scalar_violation_counts_are_pinned(pinned_result):
    for name, (upper, lower) in PINNED_COUNTS.items():
        stats = pinned_result.for_schedule(name)
        assert stats.rounds == PINNED_CONFIG["n_steps"] * PINNED_CONFIG["n_vehicles"]
        assert (stats.upper_violations, stats.lower_violations) == (upper, lower), (
            f"{name}: scalar Table II reference numbers drifted — got "
            f"({stats.upper_violations}, {stats.lower_violations}), pinned ({upper}, {lower})"
        )


def test_paper_ordering_holds_at_pin(pinned_result):
    totals = {
        name: sum(PINNED_COUNTS[name]) for name in ("ascending", "random", "descending")
    }
    measured = {
        name: stats.upper_violations + stats.lower_violations
        for name, stats in ((s.schedule_name, s) for s in pinned_result.stats)
    }
    assert measured == totals
    assert totals["ascending"] < totals["random"] < totals["descending"]


def test_default_engine_matches_scalar_pin(pinned_result, monkeypatch):
    # run_case_study with no engine choice must keep producing the scalar
    # reference numbers (REPRO_ENGINE unset).
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    default = run_case_study(CaseStudyConfig(**PINNED_CONFIG))
    assert default.stats == pinned_result.stats
