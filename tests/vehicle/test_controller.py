"""Unit tests for the PI speed controller."""

import pytest

from repro.core import VehicleError
from repro.vehicle import SpeedController


class TestSpeedController:
    def test_invalid_gains_rejected(self):
        with pytest.raises(VehicleError):
            SpeedController(kp=-1.0)
        with pytest.raises(VehicleError):
            SpeedController(ki=-0.5)
        with pytest.raises(VehicleError):
            SpeedController(integral_limit=0.0)

    def test_zero_error_zero_command(self):
        controller = SpeedController()
        assert controller.command(10.0, 10.0, 0.1) == pytest.approx(0.0)

    def test_positive_error_accelerates(self):
        controller = SpeedController()
        assert controller.command(10.0, 9.0, 0.1) > 0.0

    def test_negative_error_brakes(self):
        controller = SpeedController()
        assert controller.command(10.0, 11.0, 0.1) < 0.0

    def test_integral_accumulates(self):
        controller = SpeedController(kp=0.0, ki=1.0)
        first = controller.command(10.0, 9.0, 0.1)
        second = controller.command(10.0, 9.0, 0.1)
        assert second > first

    def test_integral_windup_clamped(self):
        controller = SpeedController(kp=0.0, ki=1.0, integral_limit=0.5)
        for _ in range(100):
            command = controller.command(10.0, 0.0, 1.0)
        assert command == pytest.approx(0.5)

    def test_reset_clears_integral(self):
        controller = SpeedController(kp=0.0, ki=1.0)
        controller.command(10.0, 9.0, 1.0)
        controller.reset()
        assert controller.command(10.0, 10.0, 1.0) == pytest.approx(0.0)

    def test_invalid_dt_rejected(self):
        with pytest.raises(VehicleError):
            SpeedController().command(10.0, 10.0, 0.0)

    def test_closed_loop_converges_to_target(self):
        import numpy as np

        from repro.vehicle import LongitudinalVehicle, VehicleParameters, VehicleState

        rng = np.random.default_rng(0)
        params = VehicleParameters(max_disturbance=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=5.0))
        controller = SpeedController()
        for _ in range(600):
            command = controller.command(10.0, vehicle.speed, params.dt)
            vehicle.step(command, rng)
        assert vehicle.speed == pytest.approx(10.0, abs=0.05)
