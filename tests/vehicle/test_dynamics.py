"""Unit tests for the longitudinal vehicle dynamics."""

import numpy as np
import pytest

from repro.core import VehicleError
from repro.vehicle import LongitudinalVehicle, VehicleParameters, VehicleState


class TestParameters:
    def test_defaults_valid(self):
        VehicleParameters()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dt": 0.0},
            {"drag": -0.1},
            {"max_accel": 0.0},
            {"max_disturbance": -0.1},
            {"max_speed": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(VehicleError):
            VehicleParameters(**kwargs)

    def test_negative_initial_speed_rejected(self):
        with pytest.raises(VehicleError):
            VehicleState(speed=-1.0)


class TestDynamics:
    def test_constant_zero_command_decays_speed(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(drag=0.1, max_disturbance=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=10.0))
        for _ in range(50):
            vehicle.step(0.0, rng)
        assert vehicle.speed < 10.0

    def test_positive_command_accelerates(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(max_disturbance=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=5.0))
        vehicle.step(2.0, rng)
        assert vehicle.speed > 5.0

    def test_command_saturation(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(max_accel=1.0, max_disturbance=0.0, drag=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=5.0))
        vehicle.step(100.0, rng)
        assert vehicle.speed == pytest.approx(5.0 + params.dt * 1.0)

    def test_speed_never_negative(self):
        rng = np.random.default_rng(0)
        vehicle = LongitudinalVehicle(VehicleParameters(max_disturbance=0.0), VehicleState(speed=0.1))
        for _ in range(100):
            vehicle.step(-3.0, rng)
        assert vehicle.speed == 0.0

    def test_speed_capped_at_max(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(max_speed=12.0, max_disturbance=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=10.0))
        for _ in range(500):
            vehicle.step(3.0, rng)
        assert vehicle.speed == pytest.approx(12.0)

    def test_position_integrates_speed(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(max_disturbance=0.0, drag=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=10.0))
        vehicle.step(0.0, rng)
        assert vehicle.position == pytest.approx(params.dt * 10.0)

    def test_disturbance_is_bounded(self):
        rng = np.random.default_rng(0)
        params = VehicleParameters(max_disturbance=0.05, drag=0.0)
        vehicle = LongitudinalVehicle(params, VehicleState(speed=10.0))
        previous = vehicle.speed
        for _ in range(200):
            vehicle.step(0.0, rng)
            assert abs(vehicle.speed - previous) <= 0.05 + 1e-12
            previous = vehicle.speed
