"""The repro.api facade: the four public verbs and the store convention."""

import asyncio
import json

import numpy as np
import pytest

from repro import api
from repro.core.exceptions import ExperimentError
from repro.engine import get_engine
from repro.runner import ArtifactStore, default_store
from repro.runner.store import STORE_ENV_VAR
from repro.scenarios.spec import ComparisonCase, ComparisonScenario
from repro.scheduling import AscendingSchedule, DescendingSchedule, ScheduleComparisonConfig

SPEC = ComparisonScenario(
    name="api-test",
    cases=(ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1),),
    samples=80,
    shard_samples=40,
    engine="batch",
)


class TestResolveStore:
    def test_none_disables_caching(self):
        assert api.resolve_store(None) is None

    def test_store_instance_passes_through(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        assert api.resolve_store(store) is store

    def test_path_selects_directory(self, tmp_path):
        assert api.resolve_store(tmp_path / "mine").root == tmp_path / "mine"

    def test_default_resolves_through_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
        assert api.resolve_store("default").root == default_store().root


class TestRun:
    def test_run_spec_with_store_convention(self, tmp_path):
        first = api.run(SPEC, store=tmp_path / "store")
        assert first.cached is False
        second = api.run(SPEC, store=tmp_path / "store")
        assert second.cached is True
        assert second.payload == first.payload

    def test_run_by_registry_name(self, tmp_path):
        run = api.run("table1-smoke", store=tmp_path / "store")
        assert run.spec.name == "table1-smoke"
        assert run.payload["kind"] == "comparison"

    def test_run_without_store(self):
        assert api.run(SPEC, store=None).store_path is None


class TestCompare:
    def test_matches_direct_engine_call(self):
        config = ScheduleComparisonConfig(lengths=(2.0, 3.0, 4.0), fa=1)
        reference = get_engine("batch").compare(
            config,
            (AscendingSchedule(), DescendingSchedule()),
            samples=500,
            rng=np.random.default_rng(7),
        )
        facade = api.compare(
            (2.0, 3.0, 4.0),
            1,
            samples=500,
            engine="batch",
            rng=np.random.default_rng(7),
        )
        assert facade.rows == reference.rows

    def test_seed_int_is_reproducible(self):
        first = api.compare((2.0, 3.0, 4.0), 1, samples=300, engine="batch", rng=42)
        second = api.compare((2.0, 3.0, 4.0), 1, samples=300, engine="batch", rng=42)
        assert first.rows == second.rows

    def test_schedule_strings_equal_schedule_objects(self):
        by_string = api.compare(
            (2.0, 3.0, 4.0), 1, schedules=("ascending",), samples=300,
            engine="batch", rng=0,
        )
        by_object = api.compare(
            (2.0, 3.0, 4.0), 1, schedules=(AscendingSchedule(),), samples=300,
            engine="batch", rng=0,
        )
        assert by_string.rows == by_object.rows

    def test_rejects_empty_schedules(self):
        with pytest.raises(ExperimentError, match="at least one schedule"):
            api.compare((2.0, 3.0, 4.0), 1, schedules=())


class TestCaseStudy:
    def test_runs_on_batch_engine(self):
        from repro.vehicle.case_study import CaseStudyConfig

        result = api.case_study(
            ("ascending",),
            config=CaseStudyConfig(n_steps=20, seed=3),
            n_replicas=2,
        )
        (row,) = result.stats
        assert row.schedule_name == "ascending"
        assert row.rounds > 0


class TestServing:
    def test_create_server_round_trip(self, tmp_path):
        async def scenario():
            service = api.create_service(store=tmp_path / "store", max_wait_ms=10.0)
            try:
                async with api.create_server(port=0, service=service) as server:
                    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                    writer.write(
                        b"GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    return raw
            finally:
                service.close()

        raw = asyncio.run(scenario())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200")
        assert json.loads(body)["status"] == "ok"

    def test_create_service_applies_store_convention(self, tmp_path):
        service = api.create_service(store=None)
        try:
            assert service.store is None
        finally:
            service.close()
        service = api.create_service(store=tmp_path / "store")
        try:
            assert service.store.root == tmp_path / "store"
        finally:
            service.close()
