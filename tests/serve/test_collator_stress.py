"""Concurrency stress for the batch collator: jittered mixed-plan traffic.

A seeded swarm of clients — several same-plan groups plus distinct-plan
loners, arrival times jittered — hammers one :class:`BatchCollator`.  The
assertions are the serving layer's two load-bearing promises:

* **payload bit-identity**: every client's arrays equal the ``max_batch=1``
  pass-through baseline (no coalescing), whatever batches the jitter
  produced;
* **counter consistency**: ``requests`` equals the client count,
  ``coalesced == requests - batches``, batches are bounded by the distinct
  plan count below and the client count above, and no batch exceeded
  ``max_batch``.
"""

import asyncio

import numpy as np
import pytest

from repro.scenarios.spec import ComparisonCase
from repro.serve import BatchCollator

PLANS = [
    (ComparisonCase(label="a", lengths=(2.0, 3.0, 4.0), fa=1), "ascending"),
    (ComparisonCase(label="b", lengths=(2.0, 3.0, 4.0), fa=1), "descending"),
    (ComparisonCase(label="c", lengths=(1.0, 2.0, 8.0), fa=1), "ascending"),
    (ComparisonCase(label="d", lengths=(5.0, 5.0, 9.0, 9.0, 13.0), fa=2), "descending"),
]


def build_clients(seed: int, per_plan: int = 6) -> list[dict]:
    """A deterministic client mix: ``per_plan`` clients on each plan.

    Sample budgets vary per client (they never affect the plan key) and the
    arrival jitter is drawn up front from one seeded stream, so a failing
    run reproduces exactly.
    """
    rng = np.random.default_rng(seed)
    clients = []
    for plan_index, (case, schedule) in enumerate(PLANS):
        for client_index in range(per_plan):
            clients.append(
                {
                    "case": case,
                    "schedule": schedule,
                    "samples": int(rng.integers(10, 60)),
                    "seed": 1000 * plan_index + client_index,
                    "jitter_ms": float(rng.uniform(0.0, 8.0)),
                }
            )
    return clients


async def run_swarm(collator: BatchCollator, clients: list[dict], jitter: bool):
    async def one(client: dict):
        if jitter:
            await asyncio.sleep(client["jitter_ms"] / 1000.0)
        return await collator.submit(
            "batch",
            client["case"],
            client["schedule"],
            client["samples"],
            np.random.default_rng(client["seed"]),
        )

    return await asyncio.gather(*(one(client) for client in clients))


def assert_same_results(actual, expected):
    np.testing.assert_array_equal(actual.fusion_lo, expected.fusion_lo)
    np.testing.assert_array_equal(actual.fusion_hi, expected.fusion_hi)
    np.testing.assert_array_equal(actual.valid, expected.valid)
    np.testing.assert_array_equal(actual.attacker_detected, expected.attacker_detected)
    np.testing.assert_array_equal(actual.flagged, expected.flagged)


@pytest.mark.parametrize("seed", [2014, 7])
def test_jittered_swarm_is_bit_identical_to_pass_through(seed):
    clients = build_clients(seed)

    async def coalesced():
        collator = BatchCollator(max_wait_ms=15.0, max_batch=8)
        results = await run_swarm(collator, clients, jitter=True)
        return results, collator.stats()

    async def baseline():
        collator = BatchCollator(max_wait_ms=0.0, max_batch=1)
        results = await run_swarm(collator, clients, jitter=False)
        return results, collator.stats()

    stressed, stressed_stats = asyncio.run(coalesced())
    reference, baseline_stats = asyncio.run(baseline())

    for actual, expected in zip(stressed, reference):
        assert_same_results(actual, expected)

    assert stressed_stats["requests"] == len(clients)
    assert stressed_stats["coalesced"] == stressed_stats["requests"] - stressed_stats["batches"]
    assert len(PLANS) <= stressed_stats["batches"] <= len(clients)
    assert stressed_stats["max_batch_observed"] <= 8

    # The pass-through leg must not coalesce at all.
    assert baseline_stats["batches"] == len(clients)
    assert baseline_stats["coalesced"] == 0
    assert baseline_stats["max_batch_observed"] == 1


def test_burst_without_jitter_coalesces_per_plan():
    # Simultaneous arrival: each plan's clients land in one batch, so the
    # batch count collapses to the plan count exactly.
    clients = build_clients(42, per_plan=5)

    async def scenario():
        collator = BatchCollator(max_wait_ms=50.0, max_batch=64)
        results = await run_swarm(collator, clients, jitter=False)
        return results, collator.stats()

    results, stats = asyncio.run(scenario())
    assert len(results) == len(clients)
    assert stats["batches"] == len(PLANS)
    assert stats["coalesced"] == len(clients) - len(PLANS)
    assert stats["max_batch_observed"] == 5


def test_interleaved_waves_stay_isolated_per_plan():
    # Two waves of the same swarm through one collator: counters accumulate
    # and every result still matches its solo reference.
    clients = build_clients(3, per_plan=3)

    async def scenario():
        collator = BatchCollator(max_wait_ms=10.0, max_batch=4)
        first = await run_swarm(collator, clients, jitter=True)
        second = await run_swarm(collator, clients, jitter=True)
        return first, second, collator.stats()

    async def baseline():
        collator = BatchCollator(max_wait_ms=0.0, max_batch=1)
        return await run_swarm(collator, clients, jitter=False)

    first, second, stats = asyncio.run(scenario())
    reference = asyncio.run(baseline())
    for wave in (first, second):
        for actual, expected in zip(wave, reference):
            assert_same_results(actual, expected)
    assert stats["requests"] == 2 * len(clients)
    assert stats["coalesced"] == stats["requests"] - stats["batches"]
