"""BatchCollator behaviour: coalescing, flush triggers, isolation, errors."""

import asyncio

import numpy as np
import pytest

from repro.core.exceptions import ExperimentError
from repro.scenarios.spec import ComparisonCase
from repro.serve import BatchCollator, plan_key

CASE = ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1)


def submit(collator, case=CASE, schedule="ascending", samples=20, seed=0):
    return collator.submit("batch", case, schedule, samples, np.random.default_rng(seed))


class TestPlanKey:
    def test_label_does_not_affect_key(self):
        relabeled = ComparisonCase(label="other", lengths=(2.0, 3.0, 4.0), fa=1)
        assert plan_key("batch", CASE, "ascending") == plan_key("batch", relabeled, "ascending")

    def test_physics_fields_affect_key(self):
        assert plan_key("batch", CASE, "ascending") != plan_key("fused", CASE, "ascending")
        assert plan_key("batch", CASE, "ascending") != plan_key("batch", CASE, "descending")
        wider = ComparisonCase(label="case", lengths=(2.0, 3.0, 9.0), fa=1)
        assert plan_key("batch", CASE, "ascending") != plan_key("batch", wider, "ascending")


class TestCoalescing:
    def test_same_plan_submissions_share_one_batch(self):
        async def scenario():
            collator = BatchCollator(max_wait_ms=50.0, max_batch=8)
            results = await asyncio.gather(*(submit(collator, seed=seed) for seed in range(5)))
            return collator.stats(), results

        stats, results = asyncio.run(scenario())
        assert stats["requests"] == 5
        assert stats["batches"] == 1
        assert stats["coalesced"] == 4
        assert stats["max_batch_observed"] == 5
        assert all(result.samples == 20 for result in results)

    def test_coalesced_results_bit_identical_to_solo(self):
        async def coalesced():
            collator = BatchCollator(max_wait_ms=50.0, max_batch=8)
            return await asyncio.gather(
                submit(collator, seed=1, samples=30), submit(collator, seed=2, samples=40)
            )

        async def solo(seed, samples):
            collator = BatchCollator(max_wait_ms=0.0, max_batch=1)
            return await submit(collator, seed=seed, samples=samples)

        first, second = asyncio.run(coalesced())
        ref_first = asyncio.run(solo(1, 30))
        ref_second = asyncio.run(solo(2, 40))
        np.testing.assert_array_equal(first.fusion_lo, ref_first.fusion_lo)
        np.testing.assert_array_equal(first.fusion_hi, ref_first.fusion_hi)
        np.testing.assert_array_equal(second.fusion_lo, ref_second.fusion_lo)
        np.testing.assert_array_equal(second.fusion_hi, ref_second.fusion_hi)

    def test_distinct_plans_do_not_share_batches(self):
        async def scenario():
            collator = BatchCollator(max_wait_ms=50.0, max_batch=8)
            await asyncio.gather(
                submit(collator, schedule="ascending"),
                submit(collator, schedule="descending", seed=1),
            )
            return collator.stats()

        stats = asyncio.run(scenario())
        assert stats["requests"] == 2
        assert stats["batches"] == 2
        assert stats["coalesced"] == 0

    def test_max_batch_flushes_before_timer(self):
        async def scenario():
            # A very long window: only the max_batch trigger can flush.
            collator = BatchCollator(max_wait_ms=10_000.0, max_batch=3)
            results = await asyncio.wait_for(
                asyncio.gather(*(submit(collator, seed=seed) for seed in range(3))),
                timeout=30.0,
            )
            return collator.stats(), results

        stats, results = asyncio.run(scenario())
        assert stats["batches"] == 1
        assert stats["max_batch_observed"] == 3
        assert len(results) == 3

    def test_max_batch_one_is_pass_through(self):
        async def scenario():
            collator = BatchCollator(max_wait_ms=50.0, max_batch=1)
            await asyncio.gather(*(submit(collator, seed=seed) for seed in range(4)))
            return collator.stats()

        stats = asyncio.run(scenario())
        assert stats["batches"] == 4
        assert stats["coalesced"] == 0


class TestErrors:
    def test_engine_failure_reaches_every_waiter(self):
        async def scenario():
            collator = BatchCollator(max_wait_ms=20.0, max_batch=8)
            bad = ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1)
            tasks = [
                asyncio.ensure_future(
                    collator.submit("no-such-engine", bad, "ascending", 10, np.random.default_rng(s))
                )
                for s in range(3)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(scenario())
        assert len(outcomes) == 3
        assert all(isinstance(outcome, ExperimentError) for outcome in outcomes)

    def test_constructor_validation(self):
        with pytest.raises(ExperimentError):
            BatchCollator(max_wait_ms=-1.0)
        with pytest.raises(ExperimentError):
            BatchCollator(max_batch=0)
