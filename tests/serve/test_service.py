"""FusionService: request parsing, caching layers, payload bit-identity."""

import asyncio
import json

import pytest

from repro.core.exceptions import ExperimentError
from repro.runner import ArtifactStore, run_scenario
from repro.scenarios.spec import ComparisonCase, ComparisonScenario, spec_dict, spec_key
from repro.serve import FusionService

SPEC = ComparisonScenario(
    name="serve-test",
    cases=(ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1),),
    samples=120,
    shard_samples=40,
    engine="batch",
)

CASE_STUDY_FREE_SPEC = ComparisonScenario(
    name="serve-test-fused",
    cases=(ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1),),
    samples=80,
    shard_samples=40,
    engine="fused",
)


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


class TestResolveRequest:
    def service(self):
        return FusionService(store=None)

    def test_scenario_by_name(self):
        spec, force = self.service().resolve_request({"scenario": "table1-smoke"})
        assert spec.name == "table1-smoke"
        assert force is False

    def test_inline_spec_round_trips(self):
        spec, force = self.service().resolve_request(
            {"spec": json.loads(canonical(spec_dict(SPEC))), "force": True}
        )
        assert spec == SPEC
        assert force is True

    def test_engine_override_derives_new_spec(self):
        spec, _ = self.service().resolve_request(
            {"spec": spec_dict(SPEC), "engine": "fused"}
        )
        assert spec.engine == "fused"
        assert spec_key(spec) != spec_key(SPEC)

    @pytest.mark.parametrize(
        "request_body",
        [
            None,
            [],
            {},
            {"scenario": "a", "spec": {}},
            {"spec": spec_dict(SPEC), "bogus": 1},
            {"scenario": "table1-smoke", "force": "yes"},
            {"scenario": "table1-smoke", "api_version": 99},
            {"scenario": 42},
            {"spec": {**spec_dict(SPEC), "spec_version": 99}},
        ],
    )
    def test_malformed_requests_rejected(self, request_body):
        with pytest.raises(ExperimentError):
            self.service().resolve_request(request_body)


class TestServing:
    def test_payload_bit_identical_to_runner(self, tmp_path):
        service = FusionService(store=ArtifactStore(root=tmp_path / "store"))
        response = asyncio.run(service.run_spec(SPEC))
        reference = run_scenario(SPEC, workers=1, store=None)
        assert canonical(response["payload"]) == canonical(reference.payload)
        assert response["cached"] is False
        assert response["key"] == reference.key
        assert response["api_version"] == 1

    def test_second_request_is_store_hit_with_identical_payload(self, tmp_path):
        service = FusionService(store=ArtifactStore(root=tmp_path / "store"))
        first = asyncio.run(service.run_spec(SPEC))
        second = asyncio.run(service.run_spec(SPEC))
        assert second["cached"] is True
        assert canonical(second["payload"]) == canonical(first["payload"])
        assert service.cache_hits == 1

    def test_force_recomputes(self, tmp_path):
        service = FusionService(store=ArtifactStore(root=tmp_path / "store"))
        asyncio.run(service.run_spec(SPEC))
        response = asyncio.run(service.run_spec(SPEC, force=True))
        assert response["cached"] is False

    def test_concurrent_identical_specs_share_one_execution(self):
        service = FusionService(store=None, max_wait_ms=20.0)

        async def burst():
            return await asyncio.gather(*(service.run_spec(SPEC) for _ in range(5)))

        responses = asyncio.run(burst())
        payloads = {canonical(response["payload"]) for response in responses}
        assert len(payloads) == 1
        assert sum(1 for response in responses if response["deduplicated"]) == 4
        assert service.deduplicated == 4

    def test_cross_request_plan_coalescing(self):
        # Same physics, different seeds: distinct spec keys (no dedup), but
        # every shard shares the plan key, so the collator packs them.
        service = FusionService(store=None, max_wait_ms=50.0, max_batch=32)
        seeds = [2014, 2015, 2016]
        specs = [
            ComparisonScenario(
                name=f"serve-test-{seed}",
                cases=SPEC.cases,
                samples=SPEC.samples,
                shard_samples=SPEC.shard_samples,
                engine="batch",
                seed=seed,
            )
            for seed in seeds
        ]

        async def burst():
            return await asyncio.gather(*(service.run_spec(spec) for spec in specs))

        responses = asyncio.run(burst())
        assert {response["key"] for response in responses} == {
            spec_key(spec) for spec in specs
        }
        stats = service.collator.stats()
        # 3 requests x 3 shards x 2 schedules = 18 submissions, far fewer passes.
        assert stats["requests"] == 18
        assert stats["batches"] < stats["requests"]
        # ... and coalescing must not perturb payloads: each equals its solo run.
        for spec, response in zip(specs, responses):
            reference = run_scenario(spec, workers=1, store=None)
            assert canonical(response["payload"]) == canonical(reference.payload)

    def test_fused_engine_serves_identically(self, tmp_path):
        service = FusionService(store=None)
        response = asyncio.run(service.run_spec(CASE_STUDY_FREE_SPEC))
        reference = run_scenario(CASE_STUDY_FREE_SPEC, workers=1, store=None)
        assert canonical(response["payload"]) == canonical(reference.payload)

    def test_non_comparison_kinds_served_via_thread(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("fig1-marzullo")
        service = FusionService(store=None)
        response = asyncio.run(service.run_spec(spec))
        reference = run_scenario(spec, workers=1, store=None)
        assert canonical(response["payload"]) == canonical(reference.payload)

    def test_metrics_shape(self):
        service = FusionService(store=None)
        metrics = service.metrics()
        assert metrics["served"] == 0
        assert set(metrics["collator"]) >= {"requests", "batches", "coalesced"}

    def test_scenarios_catalogue(self):
        catalogue = FusionService(store=None).scenarios()
        names = {entry["name"] for entry in catalogue["scenarios"]}
        assert "table1-smoke" in names
