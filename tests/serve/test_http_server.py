"""End-to-end serving: a live in-process HTTP server vs the CLI's artifacts.

The serving tentpole's acceptance test: start the real asyncio server on a
free port, fire concurrent identical *and* distinct spec requests at it from
client threads, and assert

* every served payload is **bit-identical** to the artifact that
  ``python -m repro run`` (the in-process CLI ``main``) writes for the same
  spec,
* identical concurrent requests share one engine execution (the service
  dedup counter) and same-plan work coalesces (the collator counter),
* the introspection routes and error mapping behave.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

import pytest

from repro.cli import main as cli_main
from repro.runner import ArtifactStore
from repro.scenarios import register_scenario
from repro.scenarios.registry import _SCENARIOS
from repro.scenarios.spec import ComparisonCase, ComparisonScenario, spec_dict
from repro.serve import FusionServer, FusionService

CASES = (ComparisonCase(label="case", lengths=(2.0, 3.0, 4.0), fa=1),)

SPEC_A = ComparisonScenario(
    name="serve-e2e-a", cases=CASES, samples=120, shard_samples=40, engine="batch"
)
SPEC_B = ComparisonScenario(
    name="serve-e2e-b", cases=CASES, samples=90, shard_samples=30, engine="batch", seed=7
)


class ServerThread:
    """Run a FusionServer on its own event loop in a daemon thread."""

    def __init__(self, service: FusionService) -> None:
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.server: FusionServer | None = None

    async def _start(self) -> FusionServer:
        server = FusionServer(self.service, port=0)
        await server.start()
        return server

    def __enter__(self) -> "ServerThread":
        self.thread.start()
        self.server = asyncio.run_coroutine_threadsafe(self._start(), self.loop).result(10)
        return self

    def __exit__(self, *exc_info) -> None:
        asyncio.run_coroutine_threadsafe(self.server.aclose(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()
        self.service.close()

    @property
    def port(self) -> int:
        return self.server.port

    def request(self, method: str, path: str, body: dict | None = None):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, payload, {"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def request_raw(self, method: str, path: str):
        """Like :meth:`request`, but returns the raw body + content type."""
        conn = HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.getheader("Content-Type"), response.read()
        finally:
            conn.close()


@pytest.fixture
def registered_specs():
    for spec in (SPEC_A, SPEC_B):
        register_scenario(spec, replace=True)
    try:
        yield
    finally:
        for spec in (SPEC_A, SPEC_B):
            _SCENARIOS.pop(spec.name, None)


def cli_artifact_payload(spec, store_dir):
    """What ``python -m repro run NAME`` stores for ``spec`` (the reference)."""
    code = cli_main(["run", spec.name, "--store", str(store_dir), "--json"])
    assert code == 0
    store = ArtifactStore(root=store_dir)
    document = store.load(spec)
    assert document is not None
    return document["payload"]


def test_served_payloads_bit_identical_to_cli_artifacts(
    tmp_path, registered_specs, capsys
):
    cli_store = tmp_path / "cli-store"
    reference_a = cli_artifact_payload(SPEC_A, cli_store)
    reference_b = cli_artifact_payload(SPEC_B, cli_store)
    capsys.readouterr()  # swallow the CLI's table output

    service = FusionService(
        store=ArtifactStore(root=tmp_path / "serve-store"), max_wait_ms=25.0, max_batch=32
    )
    with ServerThread(service) as server:
        requests = (
            [("POST", "/v1/run", {"spec": spec_dict(SPEC_A)})] * 6
            + [("POST", "/v1/run", {"scenario": SPEC_B.name})] * 3
        )
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            outcomes = list(pool.map(lambda req: server.request(*req), requests))

        statuses = [status for status, _ in outcomes]
        assert statuses == [200] * len(requests)
        bodies = [body for _, body in outcomes]
        for body in bodies[:6]:
            assert json.dumps(body["payload"], sort_keys=True) == json.dumps(
                reference_a, sort_keys=True
            )
        for body in bodies[6:]:
            assert json.dumps(body["payload"], sort_keys=True) == json.dumps(
                reference_b, sort_keys=True
            )

        # Identical concurrent requests shared one engine execution each:
        # at most 2 computations happened (one per distinct spec); everyone
        # else deduplicated or hit the artifact the first writer stored.
        _, metrics = server.request("GET", "/v1/metrics?format=json")
        computed = metrics["served"] - metrics["cache_hits"] - metrics["deduplicated"]
        assert computed == 2
        assert metrics["deduplicated"] + metrics["cache_hits"] == len(requests) - 2
        # ... and the engine passes themselves coalesced across shards:
        # 2 computed specs never cost more batches than submissions.
        assert metrics["collator"]["requests"] == 3 * 2 + 3 * 2
        assert metrics["collator"]["batches"] < metrics["collator"]["requests"]
        # Every request under concurrent load landed in the latency histogram.
        assert metrics["latency"]["count"] == len(requests)
        assert metrics["latency"]["p50_ms"] <= metrics["latency"]["p99_ms"]

        # The default exposition is Prometheus text carrying the same counts.
        status, content_type, raw = server.request_raw("GET", "/v1/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = raw.decode("utf-8")
        assert "# TYPE repro_served_requests_total counter" in text
        assert "# TYPE repro_request_seconds histogram" in text
        served_line = next(
            line for line in text.splitlines() if line.startswith("repro_served_requests_total")
        )
        # Metrics scrapes are not run requests; the counter is exactly the load.
        assert float(served_line.split()[-1]) == len(requests)
        bucket_counts = [
            float(line.split()[-1])
            for line in text.splitlines()
            if line.startswith("repro_request_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)  # cumulative buckets
        assert bucket_counts[-1] >= len(requests)  # +Inf sees every request

        # Served results were persisted: a rerun of the CLI against the
        # *serve* store is a cache hit with the same bytes.
        serve_store = ArtifactStore(root=tmp_path / "serve-store")
        document = serve_store.load(SPEC_A)
        assert document is not None
        assert json.dumps(document["payload"], sort_keys=True) == json.dumps(
            reference_a, sort_keys=True
        )


def test_introspection_and_error_mapping(tmp_path, registered_specs):
    service = FusionService(store=None)
    with ServerThread(service) as server:
        status, health = server.request("GET", "/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert set(health["engines"]) >= {"scalar", "batch", "fused"}

        status, catalogue = server.request("GET", "/v1/scenarios")
        assert status == 200
        assert SPEC_A.name in {entry["name"] for entry in catalogue["scenarios"]}

        status, body = server.request("POST", "/v1/run", {"scenario": "no-such"})
        assert status == 400 and "unknown scenario" in body["error"]

        status, body = server.request("POST", "/v1/run", {"spec": {"kind": "nope"}})
        assert status == 400 and "kind" in body["error"]

        status, _ = server.request("GET", "/v1/run")
        assert status == 405
        status, _ = server.request("GET", "/v1/missing")
        assert status == 404

        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/run", "{not json", {"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()


def test_keep_alive_serves_sequential_requests_on_one_connection(registered_specs):
    service = FusionService(store=None)
    with ServerThread(service) as server:
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()
