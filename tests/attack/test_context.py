"""Unit tests for AttackContext."""

import pytest

from repro.attack import AttackContext
from repro.core import AttackError, Interval


def make_context(**overrides) -> AttackContext:
    """A small valid context: n=4, f=1, attacker in slot 1, one correct seen."""
    defaults = dict(
        n=4,
        f=1,
        slot_index=1,
        sensor_index=2,
        width=2.0,
        own_reading=Interval(9.0, 11.0),
        delta=Interval(9.0, 11.0),
        transmitted=(Interval(9.5, 10.5),),
        transmitted_compromised=(False,),
        remaining_widths=(0.2, 1.0),
        remaining_compromised=(False, False),
    )
    defaults.update(overrides)
    return AttackContext(**defaults)


class TestValidation:
    def test_valid_context(self):
        ctx = make_context()
        assert ctx.n == 4

    def test_sensor_count_mismatch_rejected(self):
        with pytest.raises(AttackError):
            make_context(remaining_widths=(0.2,), remaining_compromised=(False,))

    def test_transmitted_flag_length_mismatch(self):
        with pytest.raises(AttackError):
            make_context(transmitted_compromised=(False, True))

    def test_delta_must_intersect_own_reading(self):
        with pytest.raises(AttackError):
            make_context(delta=Interval(20.0, 21.0))

    def test_invalid_width(self):
        with pytest.raises(AttackError):
            make_context(width=0.0)

    def test_invalid_f(self):
        with pytest.raises(AttackError):
            make_context(f=4)

    def test_invalid_n(self):
        with pytest.raises(AttackError):
            make_context(n=0, transmitted=(), transmitted_compromised=(), remaining_widths=(), remaining_compromised=())


class TestDerivedQuantities:
    def test_n_transmitted(self):
        assert make_context().n_transmitted == 1

    def test_unsent_compromised_count_counts_current(self):
        ctx = make_context(remaining_compromised=(True, False))
        assert ctx.unsent_compromised_count == 2
        assert make_context().unsent_compromised_count == 1

    def test_unseen_correct_widths(self):
        ctx = make_context(remaining_widths=(0.2, 1.0), remaining_compromised=(True, False))
        assert ctx.unseen_correct_widths == (1.0,)
        assert ctx.unseen_compromised_widths == (0.2,)

    def test_seen_correct_and_compromised(self):
        ctx = make_context(
            transmitted=(Interval(9.5, 10.5), Interval(0, 1)),
            transmitted_compromised=(False, True),
            remaining_widths=(1.0,),
            remaining_compromised=(False,),
        )
        assert ctx.seen_correct_intervals == (Interval(9.5, 10.5),)
        assert ctx.seen_compromised_intervals == (Interval(0, 1),)

    def test_with_protected_points(self):
        ctx = make_context().with_protected_points((10.0,))
        assert ctx.protected_points == (10.0,)

    def test_cache_key_ignores_slot_and_sensor_identity(self):
        a = make_context(slot_index=1, sensor_index=2)
        b = make_context(slot_index=3, sensor_index=0)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_transmitted(self):
        a = make_context()
        b = make_context(transmitted=(Interval(8.0, 9.0),))
        assert a.cache_key() != b.cache_key()

    def test_cache_key_is_hashable(self):
        assert isinstance(hash(make_context().cache_key()), int)
