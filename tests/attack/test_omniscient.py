"""Unit tests for the full-knowledge (problem (1)) attacker."""

import numpy as np
import pytest

from repro.attack import OmniscientPolicy, optimal_attack, optimal_fusion_width
from repro.core import AttackError, Interval, fuse
from repro.scheduling import DescendingSchedule, FixedSchedule, RoundConfig, run_round


class TestOptimalAttack:
    def test_single_forged_interval_extends_fusion(self):
        correct = [Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
        fusion, placement = optimal_attack(correct, [5.0], f=1)
        assert len(placement) == 1
        assert placement[0].width == pytest.approx(5.0)
        # Fusion with the truthful reading would be 11 wide; the optimal
        # attack reaches 14 by stretching along the widest correct interval.
        assert fusion.width == pytest.approx(14.0)

    def test_forged_intervals_intersect_fusion(self):
        correct = [Interval(0, 4), Interval(1, 6), Interval(2, 9)]
        fusion, placement = optimal_attack(correct, [3.0, 2.0], f=2)
        for forged in placement:
            assert forged.intersects(fusion)

    def test_optimal_never_below_truthful(self):
        correct = [Interval(0, 2), Interval(1, 3), Interval(1.5, 4)]
        for width in (0.5, 1.0, 3.0):
            truthful = fuse(correct + [Interval.from_center(1.75, width)], 1).width
            assert optimal_fusion_width(correct, [width], f=1) >= truthful - 1e-9

    def test_wider_forged_interval_never_hurts(self):
        correct = [Interval(0, 2), Interval(1, 3), Interval(1.5, 4)]
        widths = [optimal_fusion_width(correct, [w], f=1) for w in (0.5, 1.0, 2.0, 4.0)]
        assert widths == sorted(widths)

    def test_respects_theorem2_bound(self):
        correct = [Interval(0, 3), Interval(2, 8)]
        width = optimal_fusion_width(correct, [10.0], f=1)
        assert width <= (3.0 + 6.0) + 1e-9

    def test_empty_correct_rejected(self):
        with pytest.raises(AttackError):
            optimal_attack([], [1.0], f=0)

    def test_no_forged_intervals(self):
        correct = [Interval(0, 2), Interval(1, 3)]
        fusion, placement = optimal_attack(correct, [], f=0)
        assert placement == []
        assert fusion == fuse(correct, 0)


class TestOmniscientPolicy:
    def test_requires_oracle(self):
        correct = [Interval(-2.5, 2.5), Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
        config = RoundConfig(
            schedule=DescendingSchedule(),
            attacked_indices=(0,),
            policy=OmniscientPolicy(),
            f=1,
            give_oracle=False,
        )
        with pytest.raises(AttackError):
            run_round(correct, config, np.random.default_rng(0))

    def test_matches_optimal_attack_when_last(self):
        correct = [Interval(-2.5, 2.5), Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
        config = RoundConfig(
            schedule=DescendingSchedule(),
            attacked_indices=(0,),
            policy=OmniscientPolicy(),
            f=1,
            give_oracle=True,
        )
        result = run_round(correct, config, np.random.default_rng(0))
        expected = optimal_fusion_width([Interval(-5.5, 5.5), Interval(-8.5, 8.5)], [5.0], f=1)
        assert result.fusion_width == pytest.approx(expected)

    def test_schedule_irrelevant_for_omniscient_attacker(self):
        # The omniscient attacker reads the oracle, so her impact is the same
        # whether she transmits first or last.
        correct = [Interval(-2.5, 2.5), Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
        results = []
        for order in ((0, 1, 2), (2, 1, 0)):
            config = RoundConfig(
                schedule=FixedSchedule(order),
                attacked_indices=(0,),
                policy=OmniscientPolicy(),
                f=1,
                give_oracle=True,
            )
            results.append(run_round(correct, config, np.random.default_rng(0)).fusion_width)
        assert results[0] == pytest.approx(results[1])

    def test_never_detected(self):
        correct = [Interval(-1.0, 1.0), Interval(-3.0, 2.0), Interval(-2.0, 4.0), Interval(-5.0, 5.0)]
        config = RoundConfig(
            schedule=DescendingSchedule(),
            attacked_indices=(0,),
            policy=OmniscientPolicy(),
            f=1,
            give_oracle=True,
        )
        result = run_round(correct, config, np.random.default_rng(0))
        assert not result.attacker_detected
