"""Property-based tests for the stealth machinery and attack policies.

The central security claim of the attacker model is *undetectability*: any
policy that only emits admissible intervals survives the controller's
detection procedure, for every configuration in which at most ``f`` sensors
are compromised.  These hypothesis tests check that claim (and the supporting
candidate-generation invariants) over randomly generated rounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack import (
    ExpectationPolicy,
    GreedyExtendPolicy,
    RandomAdmissiblePolicy,
    candidate_intervals,
    is_admissible,
)
from repro.attack.context import AttackContext
from repro.core import Interval, max_safe_fault_bound
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    RoundConfig,
    run_round,
)

TRUE_VALUE = 0.0


@st.composite
def attacked_round(draw):
    """A random round: widths, correct placements and an attacked subset."""
    n = draw(st.integers(min_value=3, max_value=6))
    f = max_safe_fault_bound(n)
    fa = draw(st.integers(min_value=1, max_value=f))
    widths = [draw(st.floats(min_value=0.2, max_value=10.0)) for _ in range(n)]
    correct = []
    for width in widths:
        offset = draw(st.floats(min_value=0.0, max_value=1.0))
        lo = TRUE_VALUE - width * offset
        correct.append(Interval(lo, lo + width))
    attacked = tuple(sorted(draw(st.permutations(range(n)))[:fa]))
    schedule_kind = draw(st.sampled_from(["ascending", "descending", "random", "fixed"]))
    if schedule_kind == "ascending":
        schedule = AscendingSchedule()
    elif schedule_kind == "descending":
        schedule = DescendingSchedule()
    elif schedule_kind == "random":
        schedule = RandomSchedule()
    else:
        schedule = FixedSchedule(tuple(draw(st.permutations(range(n)))))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return correct, attacked, f, schedule, seed


@st.composite
def attack_context(draw):
    """A random (consistent) attacker context."""
    n = draw(st.integers(min_value=3, max_value=6))
    f = max_safe_fault_bound(n)
    width = draw(st.floats(min_value=0.3, max_value=8.0))
    own_lo = TRUE_VALUE - width * draw(st.floats(min_value=0.0, max_value=1.0))
    own = Interval(own_lo, own_lo + width)
    n_transmitted = draw(st.integers(min_value=0, max_value=n - 1))
    transmitted = []
    for _ in range(n_transmitted):
        w = draw(st.floats(min_value=0.3, max_value=8.0))
        lo = TRUE_VALUE - w * draw(st.floats(min_value=0.0, max_value=1.0))
        transmitted.append(Interval(lo, lo + w))
    n_remaining = n - 1 - n_transmitted
    remaining_widths = tuple(
        draw(st.floats(min_value=0.3, max_value=8.0)) for _ in range(n_remaining)
    )
    return AttackContext(
        n=n,
        f=f,
        slot_index=n_transmitted,
        sensor_index=0,
        width=width,
        own_reading=own,
        delta=own,
        transmitted=tuple(transmitted),
        transmitted_compromised=tuple(False for _ in transmitted),
        remaining_widths=remaining_widths,
        remaining_compromised=tuple(False for _ in remaining_widths),
    )


@given(attack_context())
@settings(max_examples=150, deadline=None)
def test_candidates_are_admissible_and_width_preserving(context):
    for candidate in candidate_intervals(context, grid_positions=5):
        assert is_admissible(candidate, context)
        assert abs(candidate.width - context.width) < 1e-9


@given(attack_context())
@settings(max_examples=150, deadline=None)
def test_truthful_reading_is_always_a_candidate(context):
    candidates = candidate_intervals(context, grid_positions=5)
    assert any(c.almost_equal(context.own_reading) for c in candidates)


@given(attacked_round())
@settings(max_examples=60, deadline=None)
def test_greedy_attacker_is_never_detected_and_truth_stays_inside(round_spec):
    correct, attacked, f, schedule, seed = round_spec
    result = run_round(
        correct,
        RoundConfig(schedule=schedule, attacked_indices=attacked, policy=GreedyExtendPolicy(), f=f),
        np.random.default_rng(seed),
    )
    assert not result.attacker_detected
    assert result.fusion.contains(TRUE_VALUE)


@given(attacked_round())
@settings(max_examples=30, deadline=None)
def test_expectation_attacker_is_never_detected_and_truth_stays_inside(round_spec):
    correct, attacked, f, schedule, seed = round_spec
    policy = ExpectationPolicy(true_value_positions=2, placement_positions=2, grid_positions=5)
    result = run_round(
        correct,
        RoundConfig(schedule=schedule, attacked_indices=attacked, policy=policy, f=f),
        np.random.default_rng(seed),
    )
    assert not result.attacker_detected
    assert result.fusion.contains(TRUE_VALUE)


@given(attacked_round())
@settings(max_examples=60, deadline=None)
def test_random_admissible_attacker_is_never_detected(round_spec):
    correct, attacked, f, schedule, seed = round_spec
    result = run_round(
        correct,
        RoundConfig(
            schedule=schedule, attacked_indices=attacked, policy=RandomAdmissiblePolicy(), f=f
        ),
        np.random.default_rng(seed),
    )
    assert not result.attacker_detected
    assert result.fusion.contains(TRUE_VALUE)


@given(attacked_round())
@settings(max_examples=40, deadline=None)
def test_attacked_fusion_respects_theorem2_bound(round_spec):
    correct, attacked, f, schedule, seed = round_spec
    attacked_result = run_round(
        correct,
        RoundConfig(schedule=schedule, attacked_indices=attacked, policy=GreedyExtendPolicy(), f=f),
        np.random.default_rng(seed),
    )
    from repro.core import theorem2_bound

    correct_only = [s for i, s in enumerate(correct) if i not in attacked]
    assert attacked_result.fusion_width <= theorem2_bound(correct_only) + 1e-9
