"""Unit tests for the passive/active stealth machinery (Section III-A)."""

import pytest

from repro.attack import (
    AttackContext,
    AttackerMode,
    active_mode_available,
    check_admissible,
    ensure_admissible,
    is_admissible,
    passive_admissible,
    required_support,
    support_point,
)
from repro.core import Interval, StealthViolationError


def context_first_slot() -> AttackContext:
    """The attacker transmits first: n=4, f=1, fa=1, nothing seen yet."""
    return AttackContext(
        n=4,
        f=1,
        slot_index=0,
        sensor_index=0,
        width=0.2,
        own_reading=Interval(9.9, 10.1),
        delta=Interval(9.9, 10.1),
        transmitted=(),
        transmitted_compromised=(),
        remaining_widths=(0.2, 1.0, 2.0),
        remaining_compromised=(False, False, False),
    )


def context_last_slot() -> AttackContext:
    """The attacker transmits last: n=4, f=1, fa=1, three correct seen."""
    return AttackContext(
        n=4,
        f=1,
        slot_index=3,
        sensor_index=0,
        width=0.2,
        own_reading=Interval(9.9, 10.1),
        delta=Interval(9.9, 10.1),
        transmitted=(Interval(9.0, 11.0), Interval(9.6, 10.6), Interval(9.95, 10.15)),
        transmitted_compromised=(False, False, False),
        remaining_widths=(),
        remaining_compromised=(),
    )


class TestModeAvailability:
    def test_required_support_formula(self):
        # n - f - far = 4 - 1 - 1 = 2
        assert required_support(context_first_slot()) == 2
        assert required_support(context_last_slot()) == 2

    def test_active_not_available_in_first_slot(self):
        assert not active_mode_available(context_first_slot())

    def test_active_available_in_last_slot(self):
        assert active_mode_available(context_last_slot())

    def test_far_counts_other_unsent_compromised(self):
        ctx = AttackContext(
            n=5,
            f=2,
            slot_index=1,
            sensor_index=1,
            width=1.0,
            own_reading=Interval(0, 1),
            delta=Interval(0.2, 0.8),
            transmitted=(Interval(0, 2),),
            transmitted_compromised=(False,),
            remaining_widths=(1.0, 2.0, 3.0),
            remaining_compromised=(True, False, False),
        )
        # far = 2 (current + one later compromised), so support = 5 - 2 - 2 = 1.
        assert ctx.unsent_compromised_count == 2
        assert required_support(ctx) == 1
        assert active_mode_available(ctx)


class TestPassiveMode:
    def test_truthful_reading_is_passive_admissible(self):
        ctx = context_first_slot()
        assert passive_admissible(ctx.own_reading, ctx)

    def test_candidate_must_contain_all_of_delta(self):
        ctx = context_first_slot()
        assert not passive_admissible(Interval(9.95, 10.15), ctx)
        assert passive_admissible(Interval(9.9, 10.1), ctx)

    def test_protected_points_must_be_covered(self):
        ctx = context_first_slot().with_protected_points((12.0,))
        assert not passive_admissible(ctx.own_reading, ctx)


class TestActiveMode:
    def test_support_point_requires_enough_coverage(self):
        transmitted = [Interval(0, 2), Interval(1, 3)]
        assert support_point(Interval(1.5, 4.0), transmitted, required=2) is not None
        assert support_point(Interval(2.5, 4.0), transmitted, required=2) is None

    def test_support_point_zero_requirement(self):
        assert support_point(Interval(0, 1), [], required=0) == pytest.approx(0.5)

    def test_active_admissible_off_delta(self):
        ctx = context_last_slot()
        # A forged interval far from Δ but overlapping two seen intervals at a
        # common point is admissible in active mode.
        candidate = Interval(10.55, 10.75)
        result = check_admissible(candidate, ctx)
        assert result.admissible
        assert result.mode is AttackerMode.ACTIVE
        assert result.support is not None
        assert candidate.contains(result.support)

    def test_active_requires_common_point_with_enough_intervals(self):
        ctx = context_last_slot()
        # Beyond every seen interval except the widest one: only coverage 1.
        candidate = Interval(10.8, 11.0)
        result = check_admissible(candidate, ctx)
        assert not result.admissible
        assert "active mode requires" in result.reason

    def test_inadmissible_before_active_mode(self):
        ctx = context_first_slot()
        result = check_admissible(Interval(10.5, 10.7), ctx)
        assert not result.admissible
        assert "passive mode" in result.reason


class TestCheckAdmissible:
    def test_passive_takes_precedence(self):
        ctx = context_last_slot()
        result = check_admissible(ctx.own_reading, ctx)
        assert result.admissible
        assert result.mode is AttackerMode.PASSIVE
        assert result.support is None

    def test_is_admissible_shorthand(self):
        ctx = context_last_slot()
        assert is_admissible(ctx.own_reading, ctx)
        assert not is_admissible(Interval(20, 21), ctx)

    def test_ensure_admissible_raises(self):
        ctx = context_first_slot()
        with pytest.raises(StealthViolationError):
            ensure_admissible(Interval(20, 21), ctx)

    def test_protected_point_violation_reported(self):
        ctx = context_last_slot().with_protected_points((9.0,))
        result = check_admissible(Interval(10.0, 10.2), ctx)
        assert not result.admissible
        assert "earlier compromised" in result.reason
