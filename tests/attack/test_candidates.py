"""Unit tests for forged-interval candidate generation."""

import pytest

from repro.attack import (
    AttackContext,
    candidate_intervals,
    endpoint_aligned,
    grid_candidates,
    is_admissible,
    passive_extremes,
)
from repro.core import Interval


def wide_attacker_context() -> AttackContext:
    """Attacker interval (width 4) wider than Δ (width 2), one correct seen."""
    return AttackContext(
        n=3,
        f=1,
        slot_index=1,
        sensor_index=1,
        width=4.0,
        own_reading=Interval(8.0, 12.0),
        delta=Interval(9.0, 11.0),
        transmitted=(Interval(9.5, 10.5),),
        transmitted_compromised=(False,),
        remaining_widths=(6.0,),
        remaining_compromised=(False,),
    )


def narrow_attacker_context() -> AttackContext:
    """Attacker interval exactly as wide as Δ — no freedom in passive mode."""
    return AttackContext(
        n=3,
        f=1,
        slot_index=0,
        sensor_index=0,
        width=2.0,
        own_reading=Interval(9.0, 11.0),
        delta=Interval(9.0, 11.0),
        transmitted=(),
        transmitted_compromised=(),
        remaining_widths=(4.0, 6.0),
        remaining_compromised=(False, False),
    )


class TestPassiveExtremes:
    def test_extremes_contain_delta(self):
        ctx = wide_attacker_context()
        for candidate in passive_extremes(ctx):
            assert candidate.contains_interval(ctx.delta)
            assert candidate.width == pytest.approx(ctx.width)

    def test_extremes_reach_both_sides(self):
        ctx = wide_attacker_context()
        extremes = passive_extremes(ctx)
        assert min(c.lo for c in extremes) == pytest.approx(ctx.delta.hi - ctx.width)
        assert max(c.hi for c in extremes) == pytest.approx(ctx.delta.lo + ctx.width)

    def test_empty_when_width_below_delta(self):
        ctx = wide_attacker_context()
        narrow = AttackContext(
            n=ctx.n,
            f=ctx.f,
            slot_index=ctx.slot_index,
            sensor_index=ctx.sensor_index,
            width=1.0,
            own_reading=Interval(9.2, 10.2),
            delta=ctx.delta,
            transmitted=ctx.transmitted,
            transmitted_compromised=ctx.transmitted_compromised,
            remaining_widths=ctx.remaining_widths,
            remaining_compromised=ctx.remaining_compromised,
        )
        assert passive_extremes(narrow) == []


class TestEndpointAligned:
    def test_candidates_have_requested_width(self):
        ctx = wide_attacker_context()
        for candidate in endpoint_aligned(ctx):
            assert candidate.width == pytest.approx(ctx.width)

    def test_alignment_with_seen_endpoints(self):
        ctx = wide_attacker_context()
        los = {round(c.lo, 9) for c in endpoint_aligned(ctx)}
        his = {round(c.hi, 9) for c in endpoint_aligned(ctx)}
        assert 9.5 in los or 9.5 in his
        assert 10.5 in los or 10.5 in his


class TestGridCandidates:
    def test_grid_size(self):
        ctx = wide_attacker_context()
        assert len(grid_candidates(ctx, positions=5)) == 5

    def test_minimum_positions(self):
        ctx = wide_attacker_context()
        assert len(grid_candidates(ctx, positions=1)) >= 1

    def test_grid_spans_window(self):
        ctx = wide_attacker_context()
        grid = grid_candidates(ctx, positions=9)
        assert min(c.lo for c in grid) < ctx.delta.lo
        assert max(c.hi for c in grid) > ctx.delta.hi


class TestCandidateIntervals:
    def test_all_candidates_admissible(self):
        ctx = wide_attacker_context()
        for candidate in candidate_intervals(ctx):
            assert is_admissible(candidate, ctx)

    def test_truthful_reading_always_present(self):
        ctx = wide_attacker_context()
        candidates = candidate_intervals(ctx)
        assert any(c.almost_equal(ctx.own_reading) for c in candidates)

    def test_never_empty(self):
        assert candidate_intervals(narrow_attacker_context())

    def test_narrow_attacker_has_single_choice(self):
        # Width equals Δ and active mode is unavailable: the only stealthy
        # placement is the truthful one.
        candidates = candidate_intervals(narrow_attacker_context())
        assert len(candidates) == 1
        assert candidates[0] == Interval(9.0, 11.0)

    def test_no_duplicates(self):
        ctx = wide_attacker_context()
        candidates = candidate_intervals(ctx)
        keys = {(round(c.lo, 9), round(c.hi, 9)) for c in candidates}
        assert len(keys) == len(candidates)


class TestBatchSidePreference:
    def test_clear_winners(self):
        import numpy as np

        from repro.attack.candidates import batch_side_preference

        rng = np.random.default_rng(0)
        sides = batch_side_preference(
            np.array([3.0, 1.0]), np.array([1.0, 3.0]), rng
        )
        assert sides.tolist() == [1.0, -1.0]

    def test_nan_scores_lose(self):
        import numpy as np

        from repro.attack.candidates import batch_side_preference

        rng = np.random.default_rng(0)
        sides = batch_side_preference(
            np.array([np.nan, 0.5]), np.array([0.5, np.nan]), rng
        )
        assert sides.tolist() == [-1.0, 1.0]

    def test_ties_break_randomly_and_symmetrically(self):
        import numpy as np

        from repro.attack.candidates import batch_side_preference

        rng = np.random.default_rng(1)
        sides = batch_side_preference(np.zeros(4000), np.zeros(4000), rng)
        assert set(sides.tolist()) == {1.0, -1.0}
        assert abs(float(sides.mean())) < 0.1

    def test_tiebreak_scores_decide_near_ties(self):
        import numpy as np

        from repro.attack.candidates import batch_side_preference

        rng = np.random.default_rng(2)
        sides = batch_side_preference(
            np.zeros(3),
            np.zeros(3),
            rng,
            right_tiebreak=np.array([2.0, 0.0, 0.0]),
            left_tiebreak=np.array([0.0, 2.0, 0.0]),
        )
        assert sides[0] == 1.0
        assert sides[1] == -1.0
        assert sides[2] in (1.0, -1.0)

    def test_primary_score_overrides_tiebreak(self):
        import numpy as np

        from repro.attack.candidates import batch_side_preference

        rng = np.random.default_rng(3)
        sides = batch_side_preference(
            np.array([5.0]),
            np.array([1.0]),
            rng,
            right_tiebreak=np.array([0.0]),
            left_tiebreak=np.array([10.0]),
        )
        assert sides.tolist() == [1.0]
