"""Unit tests for Theorem 1 (optimal attacks under partial knowledge)."""

import pytest

from repro.attack import (
    Theorem1Inputs,
    case1_applies,
    case1_placements,
    case2_applies,
    case2_placements,
    optimal_policy_exists,
)
from repro.core import AttackError, Interval, fuse


def case1_inputs() -> Theorem1Inputs:
    """Figure 3(a)-style setup: the two seen intervals coincide, the unseen one is tiny."""
    seen = (Interval(4.0, 6.0), Interval(4.0, 6.0))
    return Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=seen,
        delta=Interval(4.5, 5.5),
        attacked_widths=(8.0,),
        unseen_correct_widths=(1.0,),
    )


def case2_inputs() -> Theorem1Inputs:
    """Figure 3(b)-style setup: the attacked interval spans the seen extremes."""
    seen = (Interval(2.0, 6.0), Interval(5.0, 9.0))
    return Theorem1Inputs(
        n=4,
        f=1,
        seen_correct=seen,
        delta=Interval(5.2, 5.8),
        attacked_widths=(8.0,),
        unseen_correct_widths=(0.1,),
    )


class TestInputsValidation:
    def test_counts_must_add_up(self):
        with pytest.raises(AttackError):
            Theorem1Inputs(
                n=4,
                f=1,
                seen_correct=(Interval(0, 1),),
                delta=Interval(0, 1),
                attacked_widths=(1.0,),
                unseen_correct_widths=(),
            )

    def test_needs_attacked_sensor(self):
        with pytest.raises(AttackError):
            Theorem1Inputs(
                n=2,
                f=0,
                seen_correct=(Interval(0, 1), Interval(0, 1)),
                delta=Interval(0, 1),
                attacked_widths=(),
                unseen_correct_widths=(),
            )

    def test_derived_quantities(self):
        inputs = case1_inputs()
        assert inputs.fa == 1
        assert inputs.m_min == 8.0
        assert inputs.k == 4 - 1 - 1
        assert inputs.precondition_holds()
        assert inputs.seen_with_delta_intersection() == Interval(4.5, 5.5)


class TestCase1:
    def test_case1_applies(self):
        assert case1_applies(case1_inputs())
        assert optimal_policy_exists(case1_inputs())

    def test_case1_fails_when_seen_differ(self):
        inputs = case1_inputs()
        modified = Theorem1Inputs(
            n=inputs.n,
            f=inputs.f,
            seen_correct=(Interval(4.0, 6.0), Interval(3.0, 6.0)),
            delta=inputs.delta,
            attacked_widths=inputs.attacked_widths,
            unseen_correct_widths=inputs.unseen_correct_widths,
        )
        assert not case1_applies(modified)

    def test_case1_fails_when_unseen_too_wide(self):
        inputs = case1_inputs()
        modified = Theorem1Inputs(
            n=inputs.n,
            f=inputs.f,
            seen_correct=inputs.seen_correct,
            delta=inputs.delta,
            attacked_widths=inputs.attacked_widths,
            unseen_correct_widths=(7.0,),
        )
        assert not case1_applies(modified)

    def test_case1_placements_contain_core(self):
        inputs = case1_inputs()
        core = inputs.seen_with_delta_intersection()
        for placement in case1_placements(inputs):
            assert placement.contains_interval(core)
            assert placement.width == pytest.approx(8.0)

    def test_case1_placements_rejected_when_inapplicable(self):
        inputs = case1_inputs()
        modified = Theorem1Inputs(
            n=inputs.n,
            f=inputs.f,
            seen_correct=(Interval(4.0, 6.0), Interval(3.0, 6.0)),
            delta=inputs.delta,
            attacked_widths=inputs.attacked_widths,
            unseen_correct_widths=inputs.unseen_correct_widths,
        )
        with pytest.raises(AttackError):
            case1_placements(modified)

    def test_case1_attack_is_optimal_for_every_unseen_realisation(self):
        # The forged placements must achieve the maximum possible fusion width
        # (the hull of all correct intervals) regardless of where the small
        # unseen interval lands.
        inputs = case1_inputs()
        placements = case1_placements(inputs)
        true_value = 5.0
        unseen_width = inputs.unseen_correct_widths[0]
        for offset in (0.0, 0.5, 1.0):
            unseen = Interval(true_value - unseen_width * offset, true_value + unseen_width * (1 - offset))
            all_intervals = list(inputs.seen_correct) + [unseen] + placements
            fusion = fuse(all_intervals, inputs.f)
            correct_hull_width = max(
                s.hi for s in list(inputs.seen_correct) + [unseen]
            ) - min(s.lo for s in list(inputs.seen_correct) + [unseen])
            assert fusion.width == pytest.approx(correct_hull_width)


class TestCase2:
    def test_case2_applies(self):
        assert case2_applies(case2_inputs())
        assert optimal_policy_exists(case2_inputs())

    def test_case2_fails_when_attacked_too_narrow(self):
        # The target range [l_{n-f-fa}, u_{n-f-fa}] is [5, 6]; an attacked
        # interval of width 0.5 cannot contain it.
        inputs = case2_inputs()
        modified = Theorem1Inputs(
            n=inputs.n,
            f=inputs.f,
            seen_correct=inputs.seen_correct,
            delta=inputs.delta,
            attacked_widths=(0.5,),
            unseen_correct_widths=inputs.unseen_correct_widths,
        )
        assert not case2_applies(modified)

    def test_case2_placements_cover_target_range(self):
        inputs = case2_inputs()
        # l_{n-f-fa} is the 2nd smallest seen lower bound (=5), u the 2nd
        # largest seen upper bound (=6).
        for placement in case2_placements(inputs):
            assert placement.contains(5.0)
            assert placement.contains(6.0)

    def test_case2_placements_rejected_when_inapplicable(self):
        inputs = case2_inputs()
        modified = Theorem1Inputs(
            n=inputs.n,
            f=inputs.f,
            seen_correct=inputs.seen_correct,
            delta=inputs.delta,
            attacked_widths=(0.4,),
            unseen_correct_widths=inputs.unseen_correct_widths,
        )
        with pytest.raises(AttackError):
            case2_placements(modified)

    def test_precondition_requires_enough_seen(self):
        inputs = Theorem1Inputs(
            n=5,
            f=2,
            seen_correct=(Interval(0, 1),),
            delta=Interval(0, 1),
            attacked_widths=(2.0, 2.0),
            unseen_correct_widths=(1.0, 1.0),
        )
        # |C_S| = 1 < n - f - fa = 1?  (5 - 2 - 2 = 1, so 1 <= 1 < 3 holds.)
        assert inputs.precondition_holds()
