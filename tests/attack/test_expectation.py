"""Unit tests for the expectation-maximising attacker (problem (2))."""

import numpy as np
import pytest

from repro.attack import AttackContext, ExpectationPolicy, TruthfulPolicy, is_admissible
from repro.core import Interval
from repro.core.exceptions import AttackError
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RoundConfig,
    ScheduleComparisonConfig,
    expected_fusion_width_exhaustive,
    run_round,
)


def last_slot_context() -> AttackContext:
    """Attacker transmits last (full knowledge): n=3, f=1."""
    return AttackContext(
        n=3,
        f=1,
        slot_index=2,
        sensor_index=0,
        width=5.0,
        own_reading=Interval(-2.5, 2.5),
        delta=Interval(-2.5, 2.5),
        transmitted=(Interval(-5.5, 5.5), Interval(-8.5, 8.5)),
        transmitted_compromised=(False, False),
        remaining_widths=(),
        remaining_compromised=(),
    )


def first_slot_context() -> AttackContext:
    """Attacker transmits first (no knowledge): n=3, f=1."""
    return AttackContext(
        n=3,
        f=1,
        slot_index=0,
        sensor_index=0,
        width=5.0,
        own_reading=Interval(-2.5, 2.5),
        delta=Interval(-2.5, 2.5),
        transmitted=(),
        transmitted_compromised=(),
        remaining_widths=(11.0, 17.0),
        remaining_compromised=(False, False),
    )


class TestExpectationPolicyDecisions:
    def test_choice_is_admissible(self):
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = last_slot_context()
        assert is_admissible(policy.choose_interval(ctx, rng), ctx)

    def test_full_knowledge_attack_extends_fusion(self):
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = last_slot_context()
        forged = policy.choose_interval(ctx, rng)
        # With full knowledge the attacker should do strictly better than the
        # truthful placement: stretching to one end of the widest interval.
        truthful_width = 11.0  # fusion with the truth is [-5.5, 5.5]
        from repro.core import fuse

        attacked_width = fuse(list(ctx.transmitted) + [forged], ctx.f).width
        assert attacked_width > truthful_width

    def test_no_knowledge_passive_constraint_forces_truth_when_tight(self):
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = first_slot_context()
        forged = policy.choose_interval(ctx, rng)
        # Width equals |Δ| and active mode is unavailable, so the only
        # admissible interval is the correct one.
        assert forged == ctx.own_reading

    def test_decisions_are_cached(self):
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = last_slot_context()
        first = policy.choose_interval(ctx, rng)
        assert policy._cache
        second = policy.choose_interval(ctx, rng)
        assert first == second
        assert policy.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_expected_width_of_inadmissible_candidate_is_minus_inf(self):
        policy = ExpectationPolicy()
        ctx = first_slot_context()
        assert policy._expected_final_width(Interval(10.0, 15.0), ctx) == -np.inf


class TestExpectationPolicyMemoisation:
    def test_cache_hits_across_rounds_under_ascending(self):
        """The Ascending fast path: the exhaustive grid repeats contexts.

        Under the Ascending schedule the attacked (most precise) sensor
        transmits first, so its context only varies with its own sampled
        reading — the exhaustive enumeration revisits the same handful of
        contexts over and over and the memo answers most rounds.
        """
        policy = ExpectationPolicy()
        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)
        expected_fusion_width_exhaustive(
            config, AscendingSchedule(), policy, rng=np.random.default_rng(0)
        )
        # 27 rounds but only `positions` distinct slot-0 contexts.
        stats = policy.stats()
        assert stats["misses"] <= config.positions
        assert stats["hits"] >= 27 - config.positions
        assert stats["hits"] > stats["misses"]

    def test_memo_key_distinguishes_conservative_mode(self):
        """The two attacker variants must never share a memo entry."""
        ctx = last_slot_context()
        faithful = ExpectationPolicy(conservative=False)
        conservative = ExpectationPolicy(conservative=True)
        assert faithful._memo_key(ctx) != conservative._memo_key(ctx)
        # The context part is shared; only the conservative flag differs.
        assert faithful._memo_key(ctx)[1] == conservative._memo_key(ctx)[1]
        assert faithful._memo_key(ctx) == (False, ctx.cache_key())

    def test_cache_persists_across_reset(self):
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = last_slot_context()
        policy.choose_interval(ctx, rng)
        policy.reset()
        policy.choose_interval(ctx, rng)
        assert policy.stats()["hits"] == 1

    def test_stats_are_read_only_snapshots(self):
        """Mutating a returned stats dict never touches the policy's tallies."""
        rng = np.random.default_rng(0)
        policy = ExpectationPolicy()
        ctx = last_slot_context()
        policy.choose_interval(ctx, rng)
        snapshot = policy.stats()
        snapshot["misses"] = 999
        assert policy.stats()["misses"] == 1

    def test_fresh_policy_per_compare_leg_starts_from_zero(self):
        """The engines build a fresh policy per run, so each compare() leg's
        memo statistics start from zero — no cross-leg bleed-through."""
        from repro.engine import get_engine
        from repro.scheduling.schedule import FixedSchedule

        config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1, positions=3)
        engine = get_engine("scalar")
        policies = []
        original = engine._policy

        def recording(spec):
            policy = original(spec)
            policies.append(policy)
            return policy

        engine._policy = recording
        try:
            for _ in range(2):  # two legs of a compare()
                engine.run_rounds(
                    config,
                    FixedSchedule((0, 1, 2)),
                    "expectation",
                    samples=4,
                    rng=np.random.default_rng(0),
                )
        finally:
            del engine._policy
        assert len(policies) == 2
        first, second = (policy.stats() for policy in policies)
        assert first == second  # identical legs, identically counted
        assert second["misses"] >= 1  # fresh memo: the first decision missed

    def test_tie_break_first_is_deterministic_and_consumes_no_rng(self):
        ctx = last_slot_context()
        decisions = set()
        for seed in range(5):
            policy = ExpectationPolicy(tie_break="first")
            rng = np.random.default_rng(seed)
            state_before = rng.bit_generator.state
            decisions.add(policy.choose_interval(ctx, rng))
            assert rng.bit_generator.state == state_before
        assert len(decisions) == 1

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(AttackError, match="tie_break"):
            ExpectationPolicy(tie_break="sometimes")


class TestExpectationPolicyInRounds:
    def test_descending_attack_at_least_as_strong_as_ascending(self):
        # The information advantage of transmitting last can only help.
        correct = [Interval(-2.5, 2.5), Interval(-5.5, 5.5), Interval(-8.5, 8.5)]
        rng = np.random.default_rng(0)
        descending = run_round(
            correct,
            RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy(), f=1),
            rng,
        )
        ascending = run_round(
            correct,
            RoundConfig(schedule=AscendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy(), f=1),
            rng,
        )
        assert descending.fusion_width >= ascending.fusion_width

    def test_attacker_never_detected(self):
        correct = [Interval(-2.5, 2.5), Interval(-4.0, 3.0), Interval(-3.0, 6.0)]
        for schedule in (AscendingSchedule(), DescendingSchedule()):
            rng = np.random.default_rng(3)
            result = run_round(
                correct,
                RoundConfig(schedule=schedule, attacked_indices=(0,), policy=ExpectationPolicy(), f=1),
                rng,
            )
            assert not result.attacker_detected

    def test_attack_at_least_as_wide_as_truthful(self):
        correct = [Interval(-1.0, 1.0), Interval(-4.0, 2.0), Interval(-2.0, 5.0)]
        rng = np.random.default_rng(1)
        truthful = run_round(
            correct,
            RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=TruthfulPolicy(), f=1),
            rng,
        )
        attacked = run_round(
            correct,
            RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy(), f=1),
            rng,
        )
        assert attacked.fusion_width >= truthful.fusion_width - 1e-9

    def test_two_compromised_sensors(self):
        correct = [Interval(-1.0, 1.0), Interval(-1.5, 0.5), Interval(-3.0, 3.0), Interval(-5.0, 5.0), Interval(-7.0, 7.0)]
        rng = np.random.default_rng(2)
        result = run_round(
            correct,
            RoundConfig(
                schedule=DescendingSchedule(),
                attacked_indices=(0, 1),
                policy=ExpectationPolicy(),
                f=2,
            ),
            rng,
        )
        assert not result.attacker_detected
        assert result.fusion.contains(0.0)

    def test_fusion_always_contains_true_value(self):
        # Stealthy attacks with fa <= f can widen but never exclude the truth.
        rng = np.random.default_rng(4)
        for seed in range(5):
            local = np.random.default_rng(seed)
            correct = [
                Interval.from_center(float(local.uniform(-0.4, 0.4)) * w, w).shift(0.0)
                for w in (2.0, 4.0, 8.0)
            ]
            correct = [s if s.contains(0.0) else Interval.from_center(0.0, s.width) for s in correct]
            result = run_round(
                correct,
                RoundConfig(schedule=DescendingSchedule(), attacked_indices=(0,), policy=ExpectationPolicy(), f=1),
                rng,
            )
            assert result.fusion.contains(0.0)
