"""Tests for the scalar greedy stretch policy (the batch engine's oracle)."""

import numpy as np
import pytest

from repro.attack import ActiveStretchPolicy
from repro.core import AttackError, Interval
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    RoundConfig,
    run_round,
)


def _random_round(lengths, schedule, attacked, side, seed, f=None):
    rng = np.random.default_rng(seed)
    intervals = [Interval(lo, lo + w) for w, lo in ((w, -w * rng.uniform()) for w in lengths)]
    config = RoundConfig(
        schedule=schedule,
        attacked_indices=attacked,
        policy=ActiveStretchPolicy(side=side),
        f=f,
    )
    return run_round(intervals, config, rng)


@pytest.mark.parametrize("side", [1, -1])
@pytest.mark.parametrize("schedule", [AscendingSchedule(), DescendingSchedule()], ids=lambda s: s.name)
def test_stretch_policy_is_always_stealthy(schedule, side):
    for seed in range(60):
        result = _random_round((1.0, 2.0, 3.0, 4.0, 5.0), schedule, (0, 1), side, seed, f=2)
        assert not result.attacker_detected
        # Every forged interval was admissible under some stealth mode.
        assert all(mode is not None for mode in result.attacker_modes.values())
        # Correct sensors outnumber f, so the fusion still contains the truth.
        assert result.fusion.contains(0.0)


def test_descending_gives_the_stretch_attacker_more_than_ascending():
    widths = []
    for seed in range(40):
        descending = _random_round((1.0, 3.0, 9.0), DescendingSchedule(), (0,), 1, seed)
        ascending = _random_round((1.0, 3.0, 9.0), AscendingSchedule(), (0,), 1, seed)
        widths.append((ascending.fusion_width, descending.fusion_width))
    mean_asc = float(np.mean([a for a, _ in widths]))
    mean_desc = float(np.mean([d for _, d in widths]))
    assert mean_desc >= mean_asc


def test_stretch_policy_state_resets_between_rounds():
    policy = ActiveStretchPolicy()
    config = RoundConfig(
        schedule=DescendingSchedule(), attacked_indices=(0,), policy=policy, f=1
    )
    rng = np.random.default_rng(0)
    intervals = [Interval(-0.5, 0.5), Interval(-1.0, 1.0), Interval(-2.0, 2.0)]
    first = run_round(intervals, config, rng)
    second = run_round(intervals, config, rng)
    # run_round resets the policy, so identical inputs give identical rounds.
    assert first.broadcast == second.broadcast


def test_invalid_side_rejected():
    with pytest.raises(AttackError):
        ActiveStretchPolicy(side=0)
