"""Unit tests for the baseline and greedy attack policies."""

import numpy as np
import pytest

from repro.attack import (
    AttackContext,
    FixedShiftPolicy,
    GreedyExtendPolicy,
    RandomAdmissiblePolicy,
    TruthfulPolicy,
    is_admissible,
)
from repro.core import Interval


def context_with_room() -> AttackContext:
    """Attacker (width 6) much wider than Δ (width 1), two correct seen."""
    return AttackContext(
        n=4,
        f=1,
        slot_index=2,
        sensor_index=3,
        width=6.0,
        own_reading=Interval(7.0, 13.0),
        delta=Interval(9.5, 10.5),
        transmitted=(Interval(9.0, 11.0), Interval(9.8, 10.2)),
        transmitted_compromised=(False, False),
        remaining_widths=(1.0,),
        remaining_compromised=(False,),
    )


def context_no_room() -> AttackContext:
    """Attacker width equals Δ and nothing has been broadcast yet."""
    return AttackContext(
        n=3,
        f=1,
        slot_index=0,
        sensor_index=0,
        width=1.0,
        own_reading=Interval(9.5, 10.5),
        delta=Interval(9.5, 10.5),
        transmitted=(),
        transmitted_compromised=(),
        remaining_widths=(2.0, 3.0),
        remaining_compromised=(False, False),
    )


class TestTruthfulPolicy:
    def test_returns_own_reading(self):
        rng = np.random.default_rng(0)
        ctx = context_with_room()
        assert TruthfulPolicy().choose_interval(ctx, rng) == ctx.own_reading

    def test_reset_is_noop(self):
        TruthfulPolicy().reset()


class TestRandomAdmissiblePolicy:
    def test_always_admissible(self):
        policy = RandomAdmissiblePolicy()
        ctx = context_with_room()
        for seed in range(20):
            rng = np.random.default_rng(seed)
            assert is_admissible(policy.choose_interval(ctx, rng), ctx)

    def test_width_preserved(self):
        rng = np.random.default_rng(1)
        ctx = context_with_room()
        forged = RandomAdmissiblePolicy().choose_interval(ctx, rng)
        assert forged.width == pytest.approx(ctx.width)

    def test_varies_with_seed(self):
        ctx = context_with_room()
        choices = {
            RandomAdmissiblePolicy().choose_interval(ctx, np.random.default_rng(seed))
            for seed in range(25)
        }
        assert len(choices) > 1


class TestFixedShiftPolicy:
    def test_applies_shift_when_safe(self):
        rng = np.random.default_rng(0)
        ctx = context_with_room()
        forged = FixedShiftPolicy(shift=2.0).choose_interval(ctx, rng)
        # A +2 shift of [7,13] is [9,15], which still contains Δ = [9.5,10.5].
        assert forged == Interval(9.0, 15.0)
        assert is_admissible(forged, ctx)

    def test_degrades_shift_when_unsafe(self):
        rng = np.random.default_rng(0)
        ctx = context_no_room()
        forged = FixedShiftPolicy(shift=5.0).choose_interval(ctx, rng)
        # No admissible shifted placement exists, so the policy tells the truth.
        assert forged == ctx.own_reading

    def test_negative_shift(self):
        rng = np.random.default_rng(0)
        ctx = context_with_room()
        forged = FixedShiftPolicy(shift=-2.0).choose_interval(ctx, rng)
        assert is_admissible(forged, ctx)
        assert forged.center < ctx.own_reading.center


class TestGreedyExtendPolicy:
    def test_result_is_admissible(self):
        rng = np.random.default_rng(0)
        ctx = context_with_room()
        forged = GreedyExtendPolicy().choose_interval(ctx, rng)
        assert is_admissible(forged, ctx)

    def test_widens_projection_relative_to_truth(self):
        rng = np.random.default_rng(0)
        ctx = context_with_room()
        policy = GreedyExtendPolicy()
        forged = policy.choose_interval(ctx, rng)
        assert policy._projected_width(forged, ctx) >= policy._projected_width(ctx.own_reading, ctx)

    def test_no_room_means_truth(self):
        rng = np.random.default_rng(0)
        ctx = context_no_room()
        forged = GreedyExtendPolicy().choose_interval(ctx, rng)
        assert forged == ctx.own_reading

    def test_deterministic_given_context(self):
        ctx = context_with_room()
        a = GreedyExtendPolicy().choose_interval(ctx, np.random.default_rng(1))
        b = GreedyExtendPolicy().choose_interval(ctx, np.random.default_rng(2))
        assert a == b
