"""Optimizer registry behaviour: lookup, did-you-mean, registration rules."""

import pytest

from repro.core.exceptions import ExperimentError
from repro.optimize import (
    AnnealOptimizer,
    Optimizer,
    available_optimizers,
    get_optimizer,
    list_optimizers,
    register_optimizer,
)


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert set(available_optimizers()) >= {"exhaustive", "anneal", "bandit"}

    def test_list_optimizers_is_available_optimizers(self):
        assert list_optimizers is available_optimizers

    def test_get_by_name(self):
        assert isinstance(get_optimizer("anneal"), AnnealOptimizer)

    def test_instance_passes_through(self):
        optimizer = AnnealOptimizer()
        assert get_optimizer(optimizer) is optimizer

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(ExperimentError, match="available strategies"):
            get_optimizer("no-such-strategy")

    def test_typo_gets_did_you_mean_hint(self):
        with pytest.raises(ExperimentError, match="did you mean.*'anneal'"):
            get_optimizer("aneal")

    def test_empty_name_rejected(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            register_optimizer("", AnnealOptimizer)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_optimizer("anneal", AnnealOptimizer)

    def test_replace_allows_reregistration(self):
        register_optimizer("anneal", AnnealOptimizer, replace=True)
        assert isinstance(get_optimizer("anneal"), AnnealOptimizer)

    def test_optimizer_is_abstract(self):
        with pytest.raises(TypeError):
            Optimizer()
