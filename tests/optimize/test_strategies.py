"""Strategy behaviour: evaluator purity, exhaustive ground truth, anneal
resumability, bandit halving — all on small spaces so the suite stays fast."""

import math

import pytest

from repro.core.exceptions import ExperimentError
from repro.optimize import (
    ScheduleEvaluator,
    advance_chain,
    baseline_permutations,
    best_row,
    chain_state,
    get_optimizer,
    run_chain,
    seed_population,
    sort_key,
)
from repro.scenarios.spec import ComparisonCase, OptimizationScenario
from repro.scheduling import count_distinct_schedules

CASE = ComparisonCase(label="tiny", lengths=(2.0, 3.0, 4.0), fa=1)


def make_spec(**overrides) -> OptimizationScenario:
    values = {
        "name": "optimize-test",
        "case": CASE,
        "samples": 400,
        "shard_samples": 100,
        "anneal_steps": 25,
        "bandit_population": 4,
        "bandit_rounds": 3,
    }
    values.update(overrides)
    return OptimizationScenario(**values)


class TestEvaluator:
    def test_measurement_is_memoized(self):
        evaluator = ScheduleEvaluator(make_spec())
        first = evaluator.evaluate((0, 1, 2), 400)
        second = evaluator.evaluate((0, 1, 2), 400)
        assert first is second
        assert evaluator.evaluations == 2
        assert evaluator.unique_evaluations == 1
        assert evaluator.engine_passes == 1
        assert evaluator.rounds_simulated == 400

    def test_symmetric_candidates_share_a_measurement(self):
        # Sensors 0 and 1 tie in width; attacking sensor 2 keeps them both
        # unattacked, so they are interchangeable and the swapped candidate
        # is the same equivalence class — one engine pass, one memo entry.
        case = ComparisonCase(label="tied", lengths=(3.0, 3.0, 4.0), fa=1, attacked_indices=(2,))
        evaluator = ScheduleEvaluator(make_spec(case=case))
        first = evaluator.evaluate((0, 1, 2), 400)
        second = evaluator.evaluate((1, 0, 2), 400)
        assert first is second
        assert evaluator.engine_passes == 1

    def test_row_is_pure_across_evaluators(self):
        spec = make_spec()
        row_a = ScheduleEvaluator(spec).evaluate((2, 0, 1), 400)
        row_b = ScheduleEvaluator(spec).evaluate((2, 0, 1), 400)
        assert row_a == row_b

    def test_packing_matches_per_shard_run_rounds(self):
        # The run_many packing must be bit-identical to one run_rounds call
        # per shard with the same derived streams.
        import numpy as np

        from repro.engine import get_engine
        from repro.optimize import EVAL_STREAM
        from repro.scheduling.schedule import FixedSchedule
        from repro.utils.seeding import jumped_rngs

        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        row = evaluator.evaluate((1, 2, 0), 400)
        engine = get_engine(spec.engine)
        config = spec.case.comparison_config()
        streams = jumped_rngs(spec.seed, 4, EVAL_STREAM, 1, 2, 0)
        widths_sum = 0.0
        valid = 0
        for shard in range(4):
            result = engine.run_rounds(
                config,
                FixedSchedule((1, 2, 0)),
                spec.case.attack,
                None,
                100,
                streams[shard],
            )
            widths_sum += float(result.widths[result.valid].sum())
            valid += int(np.count_nonzero(result.valid))
        assert row["expected_width"] == widths_sum / valid

    def test_baselines_are_deterministic_canonicals(self):
        spec = make_spec()
        pairs = baseline_permutations(spec)
        assert [text for text, _ in pairs] == ["ascending", "descending"]
        assert pairs[0][1] == (0, 1, 2)
        assert pairs[1][1] == (2, 1, 0)


class TestSortKey:
    def test_orders_by_width_then_permutation(self):
        narrow = {"permutation": [1, 0], "expected_width": 1.0, "valid": 10}
        wide = {"permutation": [0, 1], "expected_width": 2.0, "valid": 10}
        tie = {"permutation": [0, 1], "expected_width": 1.0, "valid": 10}
        assert sorted([wide, narrow, tie], key=sort_key) == [tie, narrow, wide]

    def test_degenerate_rows_sort_last(self):
        dead = {"permutation": [0, 1], "expected_width": float("nan"), "valid": 0}
        alive = {"permutation": [1, 0], "expected_width": 99.0, "valid": 1}
        assert best_row([dead, alive]) is alive

    def test_best_row_empty_raises(self):
        with pytest.raises(ExperimentError):
            best_row([])


class TestExhaustive:
    def test_finds_the_true_optimum(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        optimizer = get_optimizer("exhaustive")
        rows = []
        for params in optimizer.plan(spec):
            rows.extend(optimizer.execute(spec, evaluator, params)["rows"])
        assert len(rows) == count_distinct_schedules(CASE.lengths, (0,)) == 6
        best = best_row(rows)
        assert all(sort_key(best) <= sort_key(row) for row in rows)

    def test_plan_chunks_cover_the_space_exactly(self):
        spec = make_spec(shard_candidates=2)
        plan = get_optimizer("exhaustive").plan(spec)
        assert [params[1] for params in plan] == [0, 2, 4]
        assert sum(params[2] for params in plan) == 6

    def test_validate_rejects_oversized_spaces(self):
        big = ComparisonCase(label="big", lengths=tuple(float(i + 2) for i in range(7)), fa=1)
        with pytest.raises(ExperimentError, match="max_candidates"):
            make_spec(case=big, max_candidates=100)


class TestAnneal:
    def test_chain_starts_from_best_baseline(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        state = chain_state(spec, evaluator)
        baseline_rows = [
            evaluator.evaluate(permutation, spec.samples)
            for _, permutation in baseline_permutations(spec)
        ]
        assert state["current"] == best_row(baseline_rows)["permutation"]

    def test_best_never_worse_than_baselines(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        state = run_chain(spec, evaluator)
        best = evaluator.evaluate(state["best"], spec.samples)
        for _, permutation in baseline_permutations(spec):
            row = evaluator.evaluate(permutation, spec.samples)
            assert sort_key(best) <= sort_key(row)

    def test_split_chain_equals_straight_run(self):
        # Resumability: [0, 10) then [10, 25) from serialised state equals
        # [0, 25) in one go — even with a brand-new evaluator for the tail.
        import json

        spec = make_spec()
        straight = run_chain(spec, ScheduleEvaluator(spec))
        head = run_chain(spec, ScheduleEvaluator(spec), until_step=10)
        revived = json.loads(json.dumps(head))  # a JSON round-trip, as stored
        tail = run_chain(spec, ScheduleEvaluator(spec), state=revived)
        assert tail == straight

    def test_rewinding_raises(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        state = run_chain(spec, evaluator, until_step=5)
        with pytest.raises(ExperimentError, match="rewind"):
            run_chain(spec, evaluator, state=state, until_step=3)

    def test_matches_exhaustive_optimum_on_tiny_space(self):
        spec = make_spec(anneal_steps=60)
        exhaustive_eval = ScheduleEvaluator(spec)
        optimizer = get_optimizer("exhaustive")
        rows = []
        for params in optimizer.plan(spec):
            rows.extend(optimizer.execute(spec, exhaustive_eval, params)["rows"])
        truth = best_row(rows)
        state = run_chain(spec, ScheduleEvaluator(spec))
        anneal_best = ScheduleEvaluator(spec).evaluate(state["best"], spec.samples)
        assert anneal_best == truth

    def test_advance_is_functional(self):
        import copy

        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        state = chain_state(spec, evaluator)
        frozen = copy.deepcopy(state)
        advance_chain(spec, evaluator, state)
        assert state == frozen  # input state unchanged


class TestBandit:
    def test_population_is_distinct_and_seeded(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        field = seed_population(spec, evaluator)
        assert len(set(field)) == len(field)
        assert field[:2] == [(0, 1, 2), (2, 1, 0)]  # baselines first
        assert field == seed_population(spec, ScheduleEvaluator(spec))

    def test_population_capped_by_space_size(self):
        spec = make_spec(bandit_population=50)
        field = seed_population(spec, ScheduleEvaluator(spec))
        assert len(field) <= count_distinct_schedules(CASE.lengths, (0,))

    def test_final_rows_include_all_baselines_at_full_budget(self):
        spec = make_spec()
        evaluator = ScheduleEvaluator(spec)
        optimizer = get_optimizer("bandit")
        (params,) = optimizer.plan(spec)
        outcome = optimizer.execute(spec, evaluator, params)
        permutations = {tuple(row["permutation"]) for row in outcome["rows"]}
        for _, permutation in baseline_permutations(spec):
            assert permutation in permutations
        assert all(row["samples"] == spec.samples for row in outcome["rows"])

    def test_rung_budgets_double_to_full(self):
        spec = make_spec()
        optimizer = get_optimizer("bandit")
        (params,) = optimizer.plan(spec)
        outcome = optimizer.execute(spec, ScheduleEvaluator(spec), params)
        budgets = [rung["budget"] for rung in outcome["history"]["bandit"]["rungs"]]
        assert budgets == [100, 200, 400]
