"""Seeded determinism pins for the optimization subsystem.

The contract: an :class:`OptimizationScenario` payload — including the
best-schedule artifact — is a *pure function of the spec*.  These pins
hold it fixed across worker counts, engine backends (for every registered
bit-identical backend) and strategies on spaces small enough for all three
to visit the optimum.
"""

import dataclasses
import json

import pytest

from repro.engine import list_engines
from repro.runner import run_scenario
from repro.scenarios.spec import ComparisonCase, OptimizationScenario

CASE = ComparisonCase(label="pin", lengths=(2.0, 3.0, 4.0, 5.0), fa=1)


def make_spec(**overrides) -> OptimizationScenario:
    values = {
        "name": "optimize-pin",
        "case": CASE,
        "samples": 300,
        "shard_samples": 100,
        "shard_candidates": 5,
        "anneal_steps": 20,
        "bandit_population": 6,
        "bandit_rounds": 3,
    }
    values.update(overrides)
    return OptimizationScenario(**values)


def payload_bytes(spec: OptimizationScenario, workers: int = 1) -> str:
    return json.dumps(run_scenario(spec, workers=workers, store=None).payload, sort_keys=True)


#: Engines that uphold the bit-identity conformance contract; numba joins
#: automatically when its optional dependency is installed.
PACKED_ENGINES = [name for name in list_engines() if name in ("batch", "fused", "numba")]


class TestWorkerInvariance:
    @pytest.mark.parametrize("strategy", ["exhaustive", "anneal", "bandit"])
    def test_workers_1_vs_4_bit_identical(self, strategy):
        spec = make_spec(strategy=strategy)
        assert payload_bytes(spec, workers=1) == payload_bytes(spec, workers=4)


class TestEngineInvariance:
    @pytest.mark.parametrize("engine", PACKED_ENGINES)
    @pytest.mark.parametrize("strategy", ["exhaustive", "anneal"])
    def test_every_packed_engine_agrees_with_batch(self, engine, strategy):
        reference = json.loads(payload_bytes(make_spec(strategy=strategy)))
        other = json.loads(payload_bytes(make_spec(strategy=strategy, engine=engine)))
        reference.pop("engine")
        other.pop("engine")
        assert other == reference


class TestStrategyAgreement:
    def test_exhaustive_and_anneal_find_the_same_best(self):
        # On a 4!-schedule space both strategies must reach the optimum and
        # report the *identical* best row (shared measurement streams).
        exhaustive = run_scenario(make_spec(strategy="exhaustive"), store=None).payload
        anneal = run_scenario(make_spec(strategy="anneal", anneal_steps=60), store=None).payload
        assert anneal["best"] == exhaustive["best"]

    def test_rerun_is_bit_identical(self):
        spec = make_spec(strategy="bandit")
        assert payload_bytes(spec) == payload_bytes(spec)

    def test_seed_changes_the_measurement(self):
        base = json.loads(payload_bytes(make_spec()))
        reseeded = json.loads(payload_bytes(make_spec(seed=7)))
        assert base["best"]["expected_width"] != reseeded["best"]["expected_width"]


class TestStrategyIdentity:
    def test_strategy_is_part_of_the_content_hash(self):
        from repro.scenarios.spec import spec_key

        spec = make_spec()
        assert spec_key(spec) != spec_key(dataclasses.replace(spec, strategy="anneal"))
