"""The docs checker runs clean on the committed docs — and catches rot."""

import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import check_docs  # noqa: E402


def test_committed_docs_are_clean():
    assert check_docs.main() == 0


def test_python_block_extraction():
    text = "\n".join(
        ["prose", "```python", "x = 1", "```", "```bash", "ls", "```", "```py", "y = 2", "```"]
    )
    blocks = check_docs.python_blocks(text)
    assert [source for _line, source in blocks] == ["x = 1", "y = 2"]
    assert blocks[0][0] == 3


def test_broken_snippet_is_flagged(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("```python\ndef broken(:\n```\n", encoding="utf-8")
    errors = check_docs.check_python_blocks(page, page.read_text(encoding="utf-8"))
    assert errors and "does not compile" in errors[0]


def test_stale_reference_is_flagged(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see `repro.engine.NoSuchEngine` for details\n", encoding="utf-8")
    errors = check_docs.check_references(page, page.read_text(encoding="utf-8"))
    assert errors and "repro.engine.NoSuchEngine" in errors[0]


def test_live_reference_resolves():
    assert check_docs.resolve_dotted("repro.batch.expectation.ExactExpectationBatchAttacker")
    assert check_docs.resolve_dotted("repro.engine.base.Engine.run_rounds")
    assert not check_docs.resolve_dotted("repro.engine.base.Engine.run_backwards")


def test_dead_link_is_flagged(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("[missing](nowhere.md) and [web](https://example.com/x)\n", encoding="utf-8")
    errors = check_docs.check_links(page, page.read_text(encoding="utf-8"))
    assert len(errors) == 1 and "nowhere.md" in errors[0]


@pytest.mark.parametrize("name", ["README.md", "docs/ARCHITECTURE.md", "docs/ATTACKERS.md"])
def test_doc_set_exists(name):
    assert (TOOLS_DIR.parent / name).is_file()
