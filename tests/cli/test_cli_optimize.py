"""`python -m repro optimize` surface: error paths and --json schema.

The happy-path numerics live in ``tests/optimize``; these tests pin the
command-line contract — non-zero exits with did-you-mean hints, resolution
of plain names to their ``optimize-`` twins, and a ``--json`` document
whose embedded spec round-trips through the wire format to the exact
content hash the run was stored under.
"""

import json

from repro.cli import main
from repro.scenarios.spec import OptimizationScenario, spec_from_dict, spec_key


def run_cli(*argv, capsys):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestOptimizeErrorPaths:
    def test_unknown_strategy_gets_did_you_mean(self, capsys, tmp_path):
        code, _, err = run_cli(
            "optimize", "table1-row1", "--strategy", "aneal", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 1
        assert "unknown optimizer strategy 'aneal'" in err
        assert "did you mean 'anneal'" in err
        assert "available strategies: anneal, bandit, exhaustive" in err

    def test_unknown_scenario_exits_nonzero_with_catalogue_pointer(self, capsys):
        code, _, err = run_cli("optimize", "zzz-no-such-thing", capsys=capsys)
        assert code == 1
        assert "unknown scenario 'zzz-no-such-thing'" in err
        assert "repro list --kind optimization" in err

    def test_near_miss_names_are_suggested(self, capsys):
        code, _, err = run_cli("optimize", "optimize-table1-row", capsys=capsys)
        assert code == 1
        assert "did you mean" in err
        assert "optimize-table1-row" in err.split("did you mean", 1)[1]

    def test_multi_case_comparison_scenario_is_rejected(self, capsys):
        code, _, err = run_cli("optimize", "ablation-attacked-sensor", capsys=capsys)
        assert code == 1
        assert "kind 'comparison' with 3 cases" in err
        assert "single-case comparison scenario" in err

    def test_unknown_engine_is_rejected_before_running(self, capsys, tmp_path):
        code, _, err = run_cli(
            "optimize", "table1-row1", "--engine", "no-such-engine", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 1
        assert "no-such-engine" in err


class TestOptimizeJson:
    def test_json_document_round_trips_the_spec(self, capsys, tmp_path):
        code, out, _ = run_cli(
            "optimize", "table1-row1", "--json", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 0
        document = json.loads(out)
        spec = spec_from_dict(document["spec"])
        assert isinstance(spec, OptimizationScenario)
        assert spec.name == "optimize-table1-row1"
        assert document["key"] == spec_key(spec)
        # Wire format is a fixed point: dict -> spec -> dict.
        assert document["spec"] == json.loads(json.dumps(document["spec"]))

        payload = document["payload"]
        assert payload["kind"] == "optimization"
        assert payload["strategy"] == spec.strategy
        assert {"best", "baselines", "improvement", "rows", "counters"} <= set(payload)
        assert payload["best"]["schedule"].startswith("fixed:")

    def test_strategy_override_changes_the_content_hash(self, capsys, tmp_path):
        _, out_a, _ = run_cli(
            "optimize", "table1-row1", "--json", "--store", str(tmp_path), capsys=capsys
        )
        code, out_b, _ = run_cli(
            "optimize", "table1-row1", "--strategy", "anneal", "--json",
            "--store", str(tmp_path), capsys=capsys,
        )
        assert code == 0
        exhaustive, anneal = json.loads(out_a), json.loads(out_b)
        assert anneal["key"] != exhaustive["key"]
        assert json.loads(out_b)["payload"]["strategy"] == "anneal"
        # Both strategies agree on the optimum of this 3-sensor row.
        assert anneal["payload"]["best"] == exhaustive["payload"]["best"]

    def test_rerun_is_served_from_the_store(self, capsys, tmp_path):
        first_code, _, _ = run_cli(
            "optimize", "table1-row1", "--store", str(tmp_path), capsys=capsys
        )
        code, out, _ = run_cli(
            "optimize", "table1-row1", "--json", "--store", str(tmp_path), capsys=capsys
        )
        assert first_code == code == 0
        assert json.loads(out)["cached"] is True

    def test_human_rendering_reports_best_against_baselines(self, capsys, tmp_path):
        code, out, _ = run_cli(
            "optimize", "table1-row1", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 0
        assert "ascending" in out and "descending" in out
        assert "best" in out.lower()
