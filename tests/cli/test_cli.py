"""CLI coverage: in-process command tests plus a true subprocess smoke."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main, render_payload

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")


def run_cli(*argv, capsys):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListCommand:
    def test_list_names_catalogue(self, capsys):
        code, out, _ = run_cli("list", capsys=capsys)
        assert code == 0
        assert "table1-row1" in out and "table2-exact" in out

    def test_list_json_with_tag_filter(self, capsys):
        code, out, _ = run_cli("list", "--json", "--tag", "smoke", capsys=capsys)
        assert code == 0
        names = [entry["name"] for entry in json.loads(out)["scenarios"]]
        assert names == ["sweep-lossy-smoke", "table1-smoke"]


class TestRunCommand:
    def test_run_uses_store_and_reports_cache_hit(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code, out, _ = run_cli(
            "run", "table1-smoke", "--workers", "2", "--store", store, capsys=capsys
        )
        assert code == 0 and "shard(s)" in out
        code, out, _ = run_cli("run", "table1-smoke", "--store", store, capsys=capsys)
        assert code == 0 and "cache hit" in out

    def test_run_json_workers_invariance(self, capsys, tmp_path):
        def payload(workers: str):
            code, out, _ = run_cli(
                "run",
                "table1-smoke",
                "--workers",
                workers,
                "--force",
                "--json",
                "--store",
                str(tmp_path / f"store-{workers}"),
                capsys=capsys,
            )
            assert code == 0
            (result,) = json.loads(out)["results"]
            assert result["cached"] is False
            return result["payload"]

        assert payload("1") == payload("2")

    def test_engine_override_changes_key_not_results(self, capsys, tmp_path):
        # scalar and batch are bit-identical under the stretch attacker, but
        # the override must address a different store entry.
        store = str(tmp_path / "store")
        code, out, _ = run_cli(
            "run", "table1-smoke", "--json", "--store", store, capsys=capsys
        )
        (batch_result,) = json.loads(out)["results"]
        code, out, _ = run_cli(
            "run", "table1-smoke", "--engine", "scalar", "--json", "--store", store, capsys=capsys
        )
        (scalar_result,) = json.loads(out)["results"]
        assert scalar_result["key"] != batch_result["key"]
        assert scalar_result["cached"] is False
        assert scalar_result["payload"] == batch_result["payload"]

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code, _, err = run_cli("run", "no-such-scenario", capsys=capsys)
        assert code == 1
        assert "unknown scenario" in err


class TestErrorPaths:
    """Unknown names exit non-zero with near-miss hints, never a traceback."""

    def test_run_suggests_near_miss_names(self, capsys):
        code, _, err = run_cli("run", "table1-smok", capsys=capsys)
        assert code == 1
        assert "did you mean" in err and "table1-smoke" in err
        assert "Traceback" not in err

    def test_run_without_near_miss_points_at_the_catalogue(self, capsys):
        code, _, err = run_cli("run", "zzz-no-such-thing", capsys=capsys)
        assert code == 1
        assert "unknown scenario" in err
        assert "python -m repro list" in err

    def test_report_suggests_derived_reports_and_scenarios(self, capsys):
        code, _, err = run_cli("report", "table2-exact-vs-prox", capsys=capsys)
        assert code == 1
        assert "did you mean" in err and "table2-exact-vs-proxy" in err
        code, _, err = run_cli("report", "table2-exac", capsys=capsys)
        assert code == 1
        assert "table2-exact" in err

    def test_report_unknown_name_lists_report_namespace(self, capsys):
        code, _, err = run_cli("report", "zzz-no-such-thing", capsys=capsys)
        assert code == 1
        assert "unknown scenario or derived report" in err
        assert "table2-exact-vs-proxy" in err  # the derived-report namespace

    def test_unknown_names_exit_nonzero_in_a_real_subprocess(self, tmp_path):
        env = {
            **os.environ,
            "PYTHONPATH": SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            "REPRO_STORE_DIR": str(tmp_path),
        }
        for arguments in (["run", "table1-smok"], ["report", "no-such-report"]):
            completed = subprocess.run(
                [sys.executable, "-m", "repro", *arguments],
                capture_output=True,
                text=True,
                cwd=str(tmp_path),
                env=env,
            )
            assert completed.returncode == 1
            assert "error:" in completed.stderr
            assert "Traceback" not in completed.stderr


class TestReportCommand:
    def test_report_renders_figure(self, capsys, tmp_path):
        code, out, _ = run_cli(
            "report", "fig1-marzullo", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 0
        assert "fusion interval for f = 0, 1, 2" in out

    def test_engine_flag_rejected_on_derived_reports(self, capsys, tmp_path):
        code, _, err = run_cli(
            "report", "table2-exact-vs-proxy", "--engine", "scalar", "--store", str(tmp_path), capsys=capsys
        )
        assert code == 1
        assert "--engine only applies to plain scenario names" in err

    def test_render_payload_falls_back_to_json(self):
        assert render_payload({"kind": "mystery", "x": 1}).startswith("{")


class TestExperimentsReport:
    """`python -m repro report experiments` — the EXPERIMENTS.md source."""

    def test_report_computes_missing_then_serves_from_store(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS_BACKBONE", ("table1-smoke",))
        store = str(tmp_path / "store")
        code, out, _ = run_cli("report", "experiments", "--store", store, capsys=capsys)
        assert code == 0
        assert out.startswith("# Experiments")
        assert "table1-smoke" in out and "python -m repro report experiments" in out
        code, out, _ = run_cli("report", "experiments", "--store", store, "--json", capsys=capsys)
        assert code == 0
        (section,) = json.loads(out)["sections"]
        assert section["name"] == "table1-smoke"
        assert section["cached"] is True  # second pass reads the stored artifact

    def test_engine_refresh_flows_into_the_document(self, capsys, tmp_path, monkeypatch):
        # A fused-engine (or numba-engine) rerun writes a new key for the
        # same name; the experiments report must pick up that newest
        # artifact — same payload bytes, new provenance.
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS_BACKBONE", ("table1-smoke",))
        store = str(tmp_path / "store")
        code, out, _ = run_cli("run", "table1-smoke", "--json", "--store", store, capsys=capsys)
        (batch_run,) = json.loads(out)["results"]
        code, out, _ = run_cli(
            "run", "table1-smoke", "--engine", "fused", "--json", "--store", store, capsys=capsys
        )
        (fused_run,) = json.loads(out)["results"]
        assert fused_run["key"] != batch_run["key"]
        code, out, _ = run_cli("report", "experiments", "--store", store, "--json", capsys=capsys)
        assert code == 0
        (section,) = json.loads(out)["sections"]
        assert section["key"] == fused_run["key"]
        assert section["engine"] == "fused"
        assert section["payload"] == batch_run["payload"]


class TestSubprocessSmoke:
    def test_python_m_repro_end_to_end(self, tmp_path):
        """The acceptance-criterion flow through a real `python -m repro`."""
        env = {
            **os.environ,
            "PYTHONPATH": SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            "REPRO_STORE_DIR": str(tmp_path),
        }

        def invoke(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro", *args],
                capture_output=True,
                text=True,
                cwd=str(tmp_path),
                env=env,
                check=True,
            )

        listing = invoke("list", "--json")
        assert "table1-smoke" in listing.stdout

        parallel = json.loads(invoke("run", "table1-smoke", "--workers", "4", "--json").stdout)
        (first,) = parallel["results"]
        assert first["cached"] is False and first["shards"] == 4

        serial = json.loads(
            invoke("run", "table1-smoke", "--workers", "1", "--force", "--json").stdout
        )
        (second,) = serial["results"]
        assert second["payload"] == first["payload"], "workers=4 vs workers=1 diverged"

        cached = json.loads(invoke("run", "table1-smoke", "--json").stdout)
        (third,) = cached["results"]
        assert third["cached"] is True
        assert third["payload"] == first["payload"]
        assert (tmp_path / f"{first['key']}.json").exists()


class TestStoreCommand:
    """`python -m repro store ls|gc` — artifact-store housekeeping."""

    def populate(self, tmp_path, capsys):
        """Two keys for table1-smoke (batch + scalar engines) in one store."""
        store = str(tmp_path / "store")
        run_cli("run", "table1-smoke", "--store", store, "--json", capsys=capsys)
        run_cli(
            "run", "table1-smoke", "--engine", "scalar", "--store", store,
            "--json", capsys=capsys,
        )
        return store

    def test_ls_reports_latest_per_name(self, capsys, tmp_path):
        store = self.populate(tmp_path, capsys)
        code, out, _ = run_cli("store", "ls", "--store", store, "--json", capsys=capsys)
        assert code == 0
        listing = json.loads(out)
        assert listing["artifacts"] == 2
        (entry,) = listing["latest"]
        assert entry["name"] == "table1-smoke"
        assert entry["size_bytes"] > 0

    def test_ls_table_output(self, capsys, tmp_path):
        store = self.populate(tmp_path, capsys)
        code, out, _ = run_cli("store", "ls", "--store", store, capsys=capsys)
        assert code == 0
        assert "table1-smoke" in out
        assert "2 artifact(s), 1 scenario name(s)" in out

    def test_gc_removes_superseded_keys(self, capsys, tmp_path):
        store = self.populate(tmp_path, capsys)
        code, out, _ = run_cli("store", "gc", "--store", store, "--json", capsys=capsys)
        assert code == 0
        report = json.loads(out)
        assert len(report["deleted"]) == 1
        assert report["reclaimed_bytes"] > 0
        # The surviving artifact still answers; the collected one is gone.
        code, out, _ = run_cli("store", "ls", "--store", store, "--json", capsys=capsys)
        assert json.loads(out)["artifacts"] == 1

    def test_gc_keep_latest_validation(self, capsys, tmp_path):
        code, _, err = run_cli(
            "store", "gc", "--store", str(tmp_path), "--keep-latest", "0", capsys=capsys
        )
        assert code == 1
        assert "--keep-latest" in err

    def test_gc_empty_store_reports_nothing_to_do(self, capsys, tmp_path):
        code, out, _ = run_cli("store", "gc", "--store", str(tmp_path), capsys=capsys)
        assert code == 0
        assert "removed 0 artifact(s)" in out


class TestServeParser:
    def test_serve_flags_parse_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8014)
        assert (args.max_wait_ms, args.max_batch) == (2.0, 64)
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-wait-ms", "5", "--max-batch", "8"]
        )
        assert (args.port, args.max_wait_ms, args.max_batch) == (0, 5.0, 8)
