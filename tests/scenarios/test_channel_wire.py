"""Property-based wire tests for :class:`repro.channel.ChannelSpec`.

The channel spec rides inside :func:`repro.scenarios.spec.spec_dict`
payloads (version-2 wire format), so it inherits the same contract the
scenario round-trip tests pin by example — here hypothesis pins it over
the whole parameter space: every valid spec survives ``to_dict`` → JSON →
:func:`channel_spec_from_dict` exactly (and keeps its content hash), and
every out-of-range probability, unknown model or unknown field is rejected
by name before it can reach an engine.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import CHANNEL_MODELS, ChannelSpec, channel_spec_from_dict
from repro.core.exceptions import ExperimentError
from repro.scenarios import ComparisonCase, ComparisonScenario
from repro.scenarios.spec import spec_dict, spec_from_dict, spec_key

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

channel_specs = st.builds(
    ChannelSpec,
    model=st.sampled_from(CHANNEL_MODELS),
    loss=probabilities,
    good_to_bad=probabilities,
    bad_to_good=probabilities,
    loss_good=probabilities,
    loss_bad=probabilities,
    delay=probabilities,
    max_delay=st.integers(min_value=1, max_value=8),
    retransmit_budget=st.integers(min_value=0, max_value=8),
)


class TestRoundTrip:
    @given(spec=channel_specs)
    def test_json_round_trip_is_exact(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert channel_spec_from_dict(payload) == spec

    @given(spec=channel_specs)
    def test_existing_spec_passes_through(self, spec):
        assert channel_spec_from_dict(spec) is spec

    @given(spec=channel_specs)
    @settings(max_examples=25)
    def test_hash_stability_through_scenario_wire(self, spec):
        # Embedding the channel in a full scenario and sending it through
        # the version-2 wire format preserves the content address.
        scenario = ComparisonScenario(
            name="wire-prop",
            engine="batch",
            samples=10,
            shard_samples=10,
            cases=(
                ComparisonCase(
                    label="case", lengths=(5.0, 11.0, 17.0), fa=1, channel=spec
                ),
            ),
        )
        payload = json.loads(json.dumps(spec_dict(scenario)))
        rebuilt = spec_from_dict(payload)
        assert rebuilt == scenario
        assert spec_key(rebuilt) == spec_key(scenario)


class TestRejection:
    @given(spec=channel_specs, value=st.floats(allow_nan=True))
    def test_out_of_range_probabilities_rejected(self, spec, value):
        if 0.0 <= value <= 1.0:
            return
        payload = spec.to_dict()
        payload["loss"] = value
        with pytest.raises(ExperimentError):
            channel_spec_from_dict(payload)

    @given(
        spec=channel_specs,
        name=st.text(min_size=1, max_size=20).filter(
            lambda text: text not in {field.name for field in dataclasses.fields(ChannelSpec)}
        ),
    )
    def test_unknown_fields_rejected_by_name(self, spec, name):
        payload = spec.to_dict()
        payload[name] = 0.5
        with pytest.raises(ExperimentError, match="unknown"):
            channel_spec_from_dict(payload)

    @given(model=st.text(max_size=20).filter(lambda text: text not in CHANNEL_MODELS))
    def test_unknown_models_rejected(self, model):
        with pytest.raises(ExperimentError):
            channel_spec_from_dict({"model": model})

    @pytest.mark.parametrize("payload", [None, 3, "iid", ["iid"]])
    def test_non_dict_payloads_rejected(self, payload):
        with pytest.raises(ExperimentError):
            channel_spec_from_dict(payload)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("loss", True),
            ("loss", "0.5"),
            ("max_delay", 0),
            ("max_delay", 1.5),
            ("retransmit_budget", -1),
            ("retransmit_budget", 0.5),
        ],
    )
    def test_bad_scalar_fields_rejected(self, field, value):
        payload = ChannelSpec().to_dict()
        payload[field] = value
        with pytest.raises(ExperimentError):
            channel_spec_from_dict(payload)
