"""Scenario registry behaviour and the built-in catalogue."""

import pytest

from repro.analysis.experiments import TABLE1_CONFIGURATIONS, table1_row_name
from repro.core import ExperimentError
from repro.scenarios import (
    ComparisonCase,
    ComparisonScenario,
    available_scenarios,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.figures import FIGURES


def make_spec(name="registry-test-spec"):
    return ComparisonScenario(
        name=name,
        cases=(ComparisonCase(label="case", lengths=(1.0, 2.0, 3.0), fa=1),),
        samples=10,
        shard_samples=10,
    )


class TestRegistry:
    def test_register_and_get(self):
        spec = register_scenario(make_spec(), replace=True)
        assert get_scenario(spec.name) is spec

    def test_duplicate_registration_rejected(self):
        spec = register_scenario(make_spec("registry-dup"), replace=True)
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(spec)
        register_scenario(spec, replace=True)  # explicit replacement is fine

    def test_unknown_scenario_lists_catalogue(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_non_spec_rejected(self):
        with pytest.raises(ExperimentError):
            register_scenario(object())

    def test_list_filters(self):
        by_tag = list_scenarios(tag="table1")
        assert by_tag and all("table1" in spec.tags for spec in by_tag)
        by_kind = list_scenarios(kind="figure")
        assert by_kind and all(spec.kind == "figure" for spec in by_kind)


class TestCatalogue:
    def test_every_table1_row_is_registered(self):
        names = available_scenarios()
        for index in range(len(TABLE1_CONFIGURATIONS)):
            assert table1_row_name(index) in names

    def test_paper_artifacts_present(self):
        names = set(available_scenarios())
        expected = {
            "table1-smoke",
            "table1-expectation",
            "table2-proxy",
            "table2-exact",
            "table2-scalar",
            "fig1-marzullo",
            "fig2-no-optimal-policy",
            "fig3-theorem1",
            "fig4-worst-case",
            "fig5-schedule-examples",
            "ablation-attacked-sensor",
            "ablation-attacker-strength",
            "ablation-baseline-fusion",
            "ablation-fault-bound",
            "ablation-trust-schedule",
            "sweep-multi-fault",
            "sweep-sensor-dropout",
            "sweep-hetero-noise",
        }
        assert expected <= names

    def test_table1_rows_carry_paper_configuration(self):
        for index, entry in enumerate(TABLE1_CONFIGURATIONS):
            spec = get_scenario(table1_row_name(index))
            (case,) = spec.cases
            assert case.lengths == entry.lengths
            assert case.fa == entry.fa

    def test_figure_scenarios_reference_registered_functions(self):
        for spec in list_scenarios(kind="figure"):
            assert spec.figure in FIGURES

    def test_row_name_bounds(self):
        with pytest.raises(IndexError):
            table1_row_name(len(TABLE1_CONFIGURATIONS))
