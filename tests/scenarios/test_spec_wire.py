"""The versioned spec wire format: spec_dict ⇄ spec_from_dict.

``spec_dict`` doubles as the artifact store's canonical form *and* the
serving layer's wire format, so these tests pin two properties at once:
the JSON round trip reconstructs every registered scenario exactly (same
dataclass, same content hash), and versioning is tolerant in precisely the
documented way — absent ``spec_version`` means 1, v1 documents never carry
the field (store hashes stay valid), unsupported versions fail loudly.
"""

import json

import pytest

from repro.core.exceptions import ExperimentError
from repro.scenarios import available_scenarios, get_scenario
from repro.scenarios.spec import (
    CHANNEL_SPEC_VERSION,
    SCHEMA_VERSION,
    SPEC_VERSION,
    SUPPORTED_SPEC_VERSIONS,
    CaseStudyScenario,
    ComparisonScenario,
    spec_dict,
    spec_from_dict,
    spec_key,
)


def wire(spec):
    """The payload exactly as it arrives over HTTP: through JSON bytes."""
    return json.loads(json.dumps(spec_dict(spec)))


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_every_registered_scenario_round_trips(self, name):
        spec = get_scenario(name)
        rebuilt = spec_from_dict(wire(spec))
        assert rebuilt == spec
        assert type(rebuilt) is type(spec)
        assert spec_key(rebuilt) == spec_key(spec)

    def test_tuple_fields_come_back_as_tuples(self):
        rebuilt = spec_from_dict(wire(get_scenario("table1-smoke")))
        assert isinstance(rebuilt, ComparisonScenario)
        assert isinstance(rebuilt.tags, tuple)
        assert isinstance(rebuilt.cases, tuple)
        assert isinstance(rebuilt.cases[0].lengths, tuple)
        assert isinstance(rebuilt.cases[0].schedules, tuple)

    def test_integral_attacked_sensor_survives_json(self):
        spec = get_scenario("table2-proxy")
        payload = wire(spec)
        if isinstance(payload.get("attacked_sensor"), (int, float)):
            payload["attacked_sensor"] = float(payload["attacked_sensor"])
            rebuilt = spec_from_dict(payload)
            assert isinstance(rebuilt, CaseStudyScenario)
            assert rebuilt.attacked_sensor == spec.attacked_sensor


class TestVersioning:
    def test_v1_documents_omit_spec_version(self):
        # The store-hash compatibility guarantee: while SPEC_VERSION == 1,
        # serialised specs are byte-for-byte what they were before the wire
        # format was versioned at all.
        assert SPEC_VERSION == 1
        payload = spec_dict(get_scenario("table1-smoke"))
        assert "spec_version" not in payload
        assert payload["schema"] == SCHEMA_VERSION

    def test_absent_spec_version_implies_one(self):
        spec = get_scenario("table1-smoke")
        assert spec_from_dict(wire(spec)) == spec

    def test_explicit_version_one_is_tolerated(self):
        spec = get_scenario("table1-smoke")
        assert spec_from_dict({**wire(spec), "spec_version": 1}) == spec

    @pytest.mark.parametrize("version", [0, 3, "one", None])
    def test_unsupported_versions_rejected_with_supported_list(self, version):
        payload = {**wire(get_scenario("table1-smoke")), "spec_version": version}
        with pytest.raises(ExperimentError, match="unsupported spec_version"):
            spec_from_dict(payload)
        assert 1 in SUPPORTED_SPEC_VERSIONS

    def test_wrong_schema_rejected(self):
        payload = {**wire(get_scenario("table1-smoke")), "schema": 999}
        with pytest.raises(ExperimentError, match="schema"):
            spec_from_dict(payload)

    def test_channel_free_specs_never_mention_the_channel(self):
        # The hash-stability half of the channel versioning contract:
        # without a channel, the serialised form is byte-for-byte the
        # pre-channel wire format — no `channel` keys, no `spec_version`.
        payload = spec_dict(get_scenario("table1-smoke"))
        assert "spec_version" not in payload
        assert all("channel" not in case for case in payload["cases"])

    def test_channel_specs_are_version_two(self):
        payload = spec_dict(get_scenario("sweep-lossy-smoke"))
        assert payload["spec_version"] == CHANNEL_SPEC_VERSION
        assert payload["cases"][0]["channel"]["model"] == "iid"

    def test_v1_payload_carrying_a_channel_is_rejected(self):
        payload = wire(get_scenario("sweep-lossy-smoke"))
        payload.pop("spec_version")
        with pytest.raises(ExperimentError, match="spec_version"):
            spec_from_dict(payload)


class TestRejection:
    def test_non_object_payload(self):
        with pytest.raises(ExperimentError, match="JSON object"):
            spec_from_dict(["not", "a", "spec"])

    def test_unknown_kind(self):
        with pytest.raises(ExperimentError, match="unknown scenario kind"):
            spec_from_dict({"kind": "mystery", "name": "x"})

    def test_unknown_fields_named_in_the_error(self):
        payload = {**wire(get_scenario("table1-smoke")), "bogus_knob": 3}
        with pytest.raises(ExperimentError, match="bogus_knob"):
            spec_from_dict(payload)

    def test_unknown_case_fields_named_in_the_error(self):
        payload = wire(get_scenario("table1-smoke"))
        payload["cases"][0]["bogus_case_knob"] = 3
        with pytest.raises(ExperimentError, match="bogus_case_knob"):
            spec_from_dict(payload)

    def test_malformed_case_shape(self):
        payload = wire(get_scenario("table1-smoke"))
        payload["cases"] = ["not-an-object"]
        with pytest.raises(ExperimentError, match="comparison case"):
            spec_from_dict(payload)

    def test_dataclass_validation_still_runs(self):
        payload = {**wire(get_scenario("table1-smoke")), "samples": -5}
        with pytest.raises(ExperimentError, match="samples"):
            spec_from_dict(payload)
