"""Behavioural checks of catalogue scenarios at reduced budgets.

The registered budgets target reproduction quality; these tests shrink them
with ``dataclasses.replace`` (a *different* spec, so nothing here can poison
a real artifact store) and assert the qualitative claims each scenario's
description makes.
"""

import dataclasses

import pytest

from repro.runner import run_scenario
from repro.scenarios import get_scenario


def shrunk(name: str, samples: int = 800, shard_samples: int = 400):
    return dataclasses.replace(
        get_scenario(name), samples=samples, shard_samples=shard_samples
    )


def widths_by_label(payload: dict) -> dict[str, dict[str, float]]:
    return {
        case["label"]: {row["schedule"]: row["expected_width"] for row in case["rows"]}
        for case in payload["cases"]
    }


def test_table1_row_ascending_beats_descending():
    payload = run_scenario(shrunk("table1-row1", samples=4_000)).payload
    rows = widths_by_label(payload)["n3-fa1"]
    assert rows["ascending"] < rows["descending"]


def test_ablation_fault_bound_widths_grow_with_f():
    payload = run_scenario(shrunk("ablation-fault-bound")).payload
    rows = widths_by_label(payload)
    assert rows["f=1"]["descending"] < rows["f=2"]["descending"]


def test_ablation_attacked_sensor_most_precise_is_strongest():
    # Theorem 4: compromising the most precise sensor is the strongest
    # choice.  The two wide sensors barely influence the fusion interval
    # (the encoders pin it), so their widths differ only by noise.
    payload = run_scenario(shrunk("ablation-attacked-sensor", samples=2_000)).payload
    rows = widths_by_label(payload)
    assert rows["encoder (most precise)"]["descending"] > max(
        rows["gps"]["descending"], rows["camera (least precise)"]["descending"]
    )


def test_ablation_attacker_strength_ordering():
    payload = run_scenario(shrunk("ablation-attacker-strength", samples=600, shard_samples=300), workers=2).payload
    rows = widths_by_label(payload)
    truthful = rows["truthful"]["descending"]
    stretch = rows["stretch"]["descending"]
    expectation = rows["expectation"]["descending"]
    assert truthful < stretch
    assert truthful < expectation
    # The exact expectation attacker is at least as strong as the greedy
    # stretch heuristic (small estimation noise allowed at this budget).
    assert expectation > stretch * 0.95


def test_sweep_multi_fault_more_attackers_wider_fusion():
    payload = run_scenario(shrunk("sweep-multi-fault", samples=2_000, shard_samples=1_000)).payload
    rows = widths_by_label(payload)
    assert (
        rows["fa=1"]["descending"]
        <= rows["fa=2"]["descending"]
        <= rows["fa=3"]["descending"]
    )


def test_sweep_sensor_dropout_tracks_empty_fusions():
    payload = run_scenario(shrunk("sweep-sensor-dropout", samples=2_000, shard_samples=1_000)).payload
    valid = {
        case["label"]: case["rows"][0]["valid_fraction"] for case in payload["cases"]
    }
    assert valid["p=0"] == 1.0
    assert valid["p=0.15"] < valid["p=0.05"] <= 1.0


def test_sweep_hetero_noise_heterogeneity_helps_ascending():
    payload = run_scenario(shrunk("sweep-hetero-noise", samples=2_000, shard_samples=1_000)).payload
    rows = widths_by_label(payload)
    for label in ("homogeneous", "mild", "extreme"):
        assert rows[label]["ascending"] <= rows[label]["descending"] * 1.05


@pytest.mark.parametrize("name", ["table2-proxy", "table2-exact"])
def test_table2_scenarios_preserve_paper_ordering(name):
    spec = dataclasses.replace(
        get_scenario(name), n_steps=30, n_replicas=4, shard_replicas=2
    )
    payload = run_scenario(spec, workers=2).payload
    totals = {
        row["schedule"]: row["upper_violations"] + row["lower_violations"]
        for row in payload["rows"]
    }
    assert totals["ascending"] == 0
    assert totals["ascending"] < totals["descending"]
