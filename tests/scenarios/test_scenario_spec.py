"""Scenario specs: validation, serialisation, content hashing."""

import dataclasses
import json

import pytest

from repro.core import ExperimentError
from repro.scenarios import (
    CaseStudyScenario,
    ComparisonCase,
    ComparisonScenario,
    FigureScenario,
    schedule_from_spec,
    spec_dict,
    spec_key,
)
from repro.scheduling import (
    AscendingSchedule,
    FixedSchedule,
    RandomSchedule,
    TrustAwareSchedule,
)


def small_scenario(**overrides) -> ComparisonScenario:
    defaults = dict(
        name="test-scenario",
        cases=(ComparisonCase(label="case", lengths=(5.0, 11.0, 17.0), fa=1),),
        samples=100,
        shard_samples=40,
    )
    defaults.update(overrides)
    return ComparisonScenario(**defaults)


class TestScheduleFromSpec:
    def test_named_schedules(self):
        assert isinstance(schedule_from_spec("ascending"), AscendingSchedule)
        assert isinstance(schedule_from_spec("random"), RandomSchedule)

    def test_fixed_permutation(self):
        schedule = schedule_from_spec("fixed:2,0,1")
        assert isinstance(schedule, FixedSchedule)
        assert schedule.permutation == (2, 0, 1)

    def test_trust_aware_scores(self):
        schedule = schedule_from_spec("trust-aware:0.1,0.1,1.0,0.8")
        assert isinstance(schedule, TrustAwareSchedule)
        assert schedule.spoofability == (0.1, 0.1, 1.0, 0.8)

    @pytest.mark.parametrize("text", ["fixed", "trust-aware", "warp"])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(Exception):
            schedule_from_spec(text)


class TestValidation:
    def test_comparison_needs_cases(self):
        with pytest.raises(ExperimentError, match="at least one case"):
            ComparisonScenario(name="empty")

    def test_duplicate_case_labels_rejected(self):
        case = ComparisonCase(label="dup", lengths=(5.0, 11.0, 17.0), fa=1)
        with pytest.raises(ExperimentError, match="duplicate"):
            small_scenario(cases=(case, case))

    def test_case_validates_eagerly(self):
        with pytest.raises(ExperimentError):
            ComparisonCase(label="bad", lengths=(5.0, 11.0, 17.0), fa=1, attack="warp")
        with pytest.raises(ExperimentError):
            ComparisonCase(label="bad", lengths=(5.0, 11.0, 17.0), fa=9)
        with pytest.raises(ExperimentError):
            ComparisonCase(label="bad", lengths=(5.0, 11.0, 17.0), fa=1, schedules=())

    def test_case_study_attacker_engine_pairing(self):
        with pytest.raises(ExperimentError, match="scalar oracle"):
            CaseStudyScenario(name="bad", attacker="expectation-grid", engine="batch")
        with pytest.raises(ExperimentError, match="batch attacker"):
            CaseStudyScenario(name="bad", attacker="proxy", engine="scalar")
        # Each attacker is welded to exactly one engine; an arbitrary engine
        # override must fail rather than store a mislabeled artifact.
        with pytest.raises(ExperimentError, match="engine='batch' only"):
            CaseStudyScenario(name="bad", attacker="proxy", engine="numba")
        with pytest.raises(ExperimentError, match="unknown case-study attacker"):
            CaseStudyScenario(name="bad", attacker="psychic")

    def test_case_study_duplicate_schedules_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate schedule"):
            CaseStudyScenario(name="bad", schedules=("ascending", "ascending"))

    def test_figure_must_be_registered(self):
        with pytest.raises(ExperimentError, match="unknown figure"):
            FigureScenario(name="bad", figure="fig99")


class TestContentHash:
    def test_key_is_stable(self):
        assert spec_key(small_scenario()) == spec_key(small_scenario())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"samples": 200},
            {"shard_samples": 20},
            {"seed": 1},
            {"engine": "batch"},
            {"name": "other"},
        ],
    )
    def test_any_field_change_changes_key(self, overrides):
        assert spec_key(small_scenario()) != spec_key(small_scenario(**overrides))

    def test_case_change_changes_key(self):
        base = small_scenario()
        changed = dataclasses.replace(
            base, cases=(ComparisonCase(label="case", lengths=(5.0, 11.0, 17.0), fa=1, attack="truthful"),)
        )
        assert spec_key(base) != spec_key(changed)

    def test_spec_dict_is_json_serialisable(self):
        for spec in (
            small_scenario(),
            CaseStudyScenario(name="cs"),
            FigureScenario(name="fig", figure="fig1-marzullo"),
        ):
            payload = spec_dict(spec)
            assert payload["kind"] == spec.kind
            assert payload["schema"] >= 1
            json.dumps(payload)
