"""Unit tests for the ASCII interval renderer."""

import pytest

from repro.core import ExperimentError, Interval
from repro.viz import LabeledInterval, render_fusion_figure, render_intervals


class TestRenderIntervals:
    def test_renders_one_line_per_interval_plus_axis(self):
        items = [
            LabeledInterval("s1", Interval(0, 4)),
            LabeledInterval("s2", Interval(2, 6)),
        ]
        lines = render_intervals(items).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("s1")
        assert lines[1].startswith("s2")

    def test_attacked_marker(self):
        items = [
            LabeledInterval("ok", Interval(0, 4)),
            LabeledInterval("bad", Interval(0, 4), attacked=True),
        ]
        text = render_intervals(items)
        assert "=" in text.splitlines()[0]
        assert "~" in text.splitlines()[1]

    def test_bounds_shown(self):
        text = render_intervals([LabeledInterval("s", Interval(1.5, 2.5))])
        assert "[1.5, 2.5]" in text

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_intervals([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ExperimentError):
            render_intervals([LabeledInterval("s", Interval(0, 1))], width=5)

    def test_degenerate_interval_renders(self):
        text = render_intervals([LabeledInterval("p", Interval(2, 2))])
        assert "|" in text


class TestRenderFusionFigure:
    def test_sensor_and_fusion_sections_separated(self):
        sensors = [LabeledInterval("s1", Interval(0, 4)), LabeledInterval("s2", Interval(1, 5))]
        fusions = [LabeledInterval("S(f=1)", Interval(0, 5))]
        text = render_fusion_figure(sensors, fusions)
        lines = text.splitlines()
        separator_lines = [
            line for line in lines if line.strip() and set(line.replace(" ", "")) == {"-"}
        ]
        assert len(separator_lines) == 1
        assert lines[0].lstrip().startswith("s1")
        assert any("S(f=1)" in line for line in lines)

    def test_needs_both_sections(self):
        with pytest.raises(ExperimentError):
            render_fusion_figure([], [LabeledInterval("S", Interval(0, 1))])
        with pytest.raises(ExperimentError):
            render_fusion_figure([LabeledInterval("s", Interval(0, 1))], [])
