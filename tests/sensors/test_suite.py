"""Unit tests for SensorSuite."""

import numpy as np
import pytest

from repro.core import SensorError
from repro.sensors import SensorSuite, sensors_from_widths
from repro.vehicle import landshark_suite


class TestSensorSuite:
    def test_empty_rejected(self):
        with pytest.raises(SensorError):
            SensorSuite([])

    def test_duplicate_names_rejected(self):
        sensors = sensors_from_widths([1.0]) + sensors_from_widths([2.0])
        with pytest.raises(SensorError):
            SensorSuite(sensors)

    def test_sequence_behaviour(self):
        suite = SensorSuite(sensors_from_widths([1.0, 2.0, 3.0]))
        assert len(suite) == 3
        assert suite[1].interval_width == pytest.approx(2.0)
        assert [s.name for s in suite] == list(suite.names)

    def test_widths_in_order(self):
        suite = SensorSuite(sensors_from_widths([3.0, 1.0, 2.0]))
        assert suite.widths == pytest.approx((3.0, 1.0, 2.0))

    def test_index_of(self):
        suite = SensorSuite(sensors_from_widths([1.0, 2.0]))
        assert suite.index_of("sensor-1") == 1
        with pytest.raises(SensorError):
            suite.index_of("nope")

    def test_precision_extremes(self):
        suite = SensorSuite(sensors_from_widths([3.0, 1.0, 2.0]))
        assert suite.most_precise_index() == 1
        assert suite.least_precise_index() == 0

    def test_precision_tie_breaking_is_deterministic(self):
        # Ties are resolved towards the first sensor in suite order.
        suite = SensorSuite(sensors_from_widths([1.0, 1.0, 5.0, 5.0]))
        assert suite.most_precise_index() == 0
        assert suite.least_precise_index() == 2

    def test_measure_all(self):
        rng = np.random.default_rng(0)
        suite = SensorSuite(sensors_from_widths([1.0, 2.0, 3.0]))
        readings = suite.measure_all(5.0, rng)
        assert len(readings) == 3
        assert all(r.is_correct for r in readings)
        assert [r.interval.width for r in readings] == pytest.approx([1.0, 2.0, 3.0])

    def test_subset(self):
        suite = SensorSuite(sensors_from_widths([1.0, 2.0, 3.0]))
        sub = suite.subset([2, 0])
        assert sub.widths == pytest.approx((3.0, 1.0))

    def test_landshark_suite_composition(self):
        suite = landshark_suite()
        assert len(suite) == 4
        assert sorted(suite.widths) == pytest.approx([0.2, 0.2, 1.0, 2.0])
        assert suite.most_precise_index() in (0, 1)
