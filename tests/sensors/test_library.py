"""Unit tests for the preset sensor library (LandShark sensors)."""

import pytest

from repro.sensors import (
    CAMERA_INTERVAL_WIDTH,
    ENCODER_INTERVAL_WIDTH,
    GPS_INTERVAL_WIDTH,
    camera_spec,
    encoder_spec,
    gps_spec,
    imu_spec,
    landshark_specs,
    make_sensor,
    sensors_from_widths,
)


class TestPresets:
    def test_gps_width_matches_paper(self):
        assert gps_spec().interval_width == pytest.approx(GPS_INTERVAL_WIDTH) == pytest.approx(1.0)

    def test_camera_width_matches_paper(self):
        assert camera_spec().interval_width == pytest.approx(CAMERA_INTERVAL_WIDTH) == pytest.approx(2.0)

    def test_encoder_width_matches_paper(self):
        assert encoder_spec().interval_width == pytest.approx(ENCODER_INTERVAL_WIDTH) == pytest.approx(0.2)

    def test_imu_spec_exists(self):
        assert imu_spec().interval_width > 0

    def test_landshark_specs_widths(self):
        widths = sorted(spec.interval_width for spec in landshark_specs())
        assert widths == pytest.approx([0.2, 0.2, 1.0, 2.0])

    def test_landshark_specs_names_unique(self):
        names = [spec.name for spec in landshark_specs()]
        assert len(set(names)) == 4


class TestFactories:
    def test_make_sensor_wraps_spec(self):
        sensor = make_sensor(gps_spec())
        assert sensor.name == "gps"
        assert sensor.interval_width == pytest.approx(1.0)

    def test_sensors_from_widths(self):
        sensors = sensors_from_widths([5.0, 11.0, 17.0])
        assert [s.interval_width for s in sensors] == pytest.approx([5.0, 11.0, 17.0])
        assert len({s.name for s in sensors}) == 3

    def test_sensors_from_widths_prefix(self):
        sensors = sensors_from_widths([1.0], prefix="abc")
        assert sensors[0].name == "abc-0"
