"""Unit and property tests for the bounded measurement-noise models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SensorError
from repro.sensors import TruncatedGaussianNoise, UniformNoise, WorstCaseNoise, ZeroNoise

HALF_WIDTHS = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


class TestZeroNoise:
    def test_always_zero(self):
        rng = np.random.default_rng(0)
        assert ZeroNoise().sample(1.0, rng) == 0.0
        assert np.all(ZeroNoise().sample_many(1.0, rng, 10) == 0.0)


class TestUniformNoise:
    def test_fraction_validation(self):
        with pytest.raises(SensorError):
            UniformNoise(fraction=1.5)
        with pytest.raises(SensorError):
            UniformNoise(fraction=-0.1)

    def test_samples_within_envelope(self):
        rng = np.random.default_rng(1)
        noise = UniformNoise()
        draws = noise.sample_many(0.5, rng, 1000)
        assert np.all(np.abs(draws) <= 0.5 + 1e-12)

    def test_fraction_shrinks_envelope(self):
        rng = np.random.default_rng(2)
        draws = UniformNoise(fraction=0.1).sample_many(1.0, rng, 1000)
        assert np.all(np.abs(draws) <= 0.1 + 1e-12)

    def test_spread_is_non_trivial(self):
        rng = np.random.default_rng(3)
        draws = UniformNoise().sample_many(1.0, rng, 2000)
        assert draws.std() > 0.3  # uniform(-1,1) has std ~0.577

    @given(HALF_WIDTHS)
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, half_width):
        rng = np.random.default_rng(0)
        noise = UniformNoise()
        for _ in range(20):
            assert abs(noise.sample(half_width, rng)) <= half_width + 1e-12


class TestTruncatedGaussianNoise:
    def test_parameter_validation(self):
        with pytest.raises(SensorError):
            TruncatedGaussianNoise(sigma_fraction=0.0)
        with pytest.raises(SensorError):
            TruncatedGaussianNoise(max_redraws=0)

    def test_samples_within_envelope(self):
        rng = np.random.default_rng(4)
        noise = TruncatedGaussianNoise(sigma_fraction=0.5)
        draws = noise.sample_many(1.0, rng, 500)
        assert np.all(np.abs(draws) <= 1.0 + 1e-12)

    def test_zero_half_width(self):
        rng = np.random.default_rng(5)
        assert TruncatedGaussianNoise().sample(0.0, rng) == 0.0

    def test_concentrates_more_than_uniform(self):
        rng = np.random.default_rng(6)
        gaussian = TruncatedGaussianNoise(sigma_fraction=0.25).sample_many(1.0, rng, 3000)
        uniform = UniformNoise().sample_many(1.0, rng, 3000)
        assert np.abs(gaussian).mean() < np.abs(uniform).mean()

    @given(HALF_WIDTHS)
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, half_width):
        rng = np.random.default_rng(0)
        noise = TruncatedGaussianNoise()
        for _ in range(20):
            assert abs(noise.sample(half_width, rng)) <= half_width + 1e-12


class TestWorstCaseNoise:
    def test_parameter_validation(self):
        with pytest.raises(SensorError):
            WorstCaseNoise(p_high=1.5)

    def test_samples_at_envelope_edges(self):
        rng = np.random.default_rng(7)
        noise = WorstCaseNoise()
        draws = noise.sample_many(0.5, rng, 200)
        assert set(np.round(np.abs(draws), 12)) == {0.5}

    def test_p_high_one_always_high(self):
        rng = np.random.default_rng(8)
        draws = WorstCaseNoise(p_high=1.0).sample_many(1.0, rng, 50)
        assert np.all(draws == 1.0)

    def test_p_high_zero_always_low(self):
        rng = np.random.default_rng(9)
        draws = WorstCaseNoise(p_high=0.0).sample_many(1.0, rng, 50)
        assert np.all(draws == -1.0)
