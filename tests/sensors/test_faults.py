"""Unit tests for the random-fault models (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core import SensorError
from repro.sensors import (
    FaultySensor,
    SensorSpec,
    StuckAtFaultModel,
    TransientFaultModel,
    UniformNoise,
)
from repro.sensors.sensor import Sensor


def make_sensor(width: float = 1.0) -> Sensor:
    return Sensor(spec=SensorSpec.from_interval_width("s", width), noise=UniformNoise())


class TestTransientFaultModel:
    def test_probability_validation(self):
        with pytest.raises(SensorError):
            TransientFaultModel(probability=1.5)

    def test_offset_validation(self):
        with pytest.raises(SensorError):
            TransientFaultModel(probability=0.1, min_offset_widths=0.5)
        with pytest.raises(SensorError):
            TransientFaultModel(probability=0.1, min_offset_widths=2.0, max_offset_widths=1.0)

    def test_zero_probability_never_faults(self):
        rng = np.random.default_rng(0)
        faulty = FaultySensor(make_sensor(), TransientFaultModel(probability=0.0))
        for _ in range(100):
            assert faulty.measure(5.0, rng).is_correct

    def test_unit_probability_always_faults(self):
        rng = np.random.default_rng(1)
        faulty = FaultySensor(make_sensor(), TransientFaultModel(probability=1.0))
        for _ in range(50):
            reading = faulty.measure(5.0, rng)
            assert not reading.is_correct

    def test_fault_rate_matches_probability(self):
        rng = np.random.default_rng(2)
        faulty = FaultySensor(make_sensor(), TransientFaultModel(probability=0.2))
        faults = sum(1 for _ in range(2000) if not faulty.measure(0.0, rng).is_correct)
        assert 0.15 < faults / 2000 < 0.25

    def test_faulty_reading_keeps_width(self):
        rng = np.random.default_rng(3)
        faulty = FaultySensor(make_sensor(2.0), TransientFaultModel(probability=1.0))
        reading = faulty.measure(0.0, rng)
        assert reading.interval.width == pytest.approx(2.0)


class TestStuckAtFaultModel:
    def test_onset_validation(self):
        with pytest.raises(SensorError):
            StuckAtFaultModel(onset_probability=-0.1)

    def test_zero_onset_never_sticks(self):
        rng = np.random.default_rng(0)
        faulty = FaultySensor(make_sensor(), StuckAtFaultModel(onset_probability=0.0))
        for step in range(50):
            assert faulty.measure(float(step), rng).is_correct

    def test_sticks_after_onset(self):
        rng = np.random.default_rng(1)
        faulty = FaultySensor(make_sensor(0.5), StuckAtFaultModel(onset_probability=1.0))
        first = faulty.measure(0.0, rng)
        later = faulty.measure(10.0, rng)
        assert later.measurement == pytest.approx(first.measurement)
        assert not later.is_correct

    def test_reset_unsticks(self):
        rng = np.random.default_rng(2)
        model = StuckAtFaultModel(onset_probability=1.0)
        faulty = FaultySensor(make_sensor(0.5), model)
        faulty.measure(0.0, rng)
        faulty.reset()
        reading = faulty.measure(10.0, rng)
        assert reading.is_correct


class TestFaultySensorInterface:
    def test_exposes_sensor_metadata(self):
        faulty = FaultySensor(make_sensor(3.0), TransientFaultModel(probability=0.5))
        assert faulty.name == "s"
        assert faulty.interval_width == pytest.approx(3.0)
        assert faulty.spec.interval_width == pytest.approx(3.0)

    def test_usable_inside_a_suite(self):
        from repro.sensors import SensorSuite

        rng = np.random.default_rng(0)
        suite = SensorSuite(
            [
                FaultySensor(
                    Sensor(spec=SensorSpec.from_interval_width(f"s{i}", 1.0 + i)),
                    TransientFaultModel(probability=0.0),
                )
                for i in range(3)
            ]
        )
        readings = suite.measure_all(2.0, rng)
        assert all(r.is_correct for r in readings)
