"""Unit and property tests for Sensor and Reading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors import Sensor, SensorSpec, UniformNoise, WorstCaseNoise, ZeroNoise


def make_sensor(width: float = 1.0, noise=None) -> Sensor:
    return Sensor(spec=SensorSpec.from_interval_width("s", width), noise=noise or UniformNoise())


class TestSensorMeasurement:
    def test_reading_fields(self):
        rng = np.random.default_rng(0)
        sensor = make_sensor(2.0, ZeroNoise())
        reading = sensor.measure(10.0, rng)
        assert reading.sensor_name == "s"
        assert reading.measurement == pytest.approx(10.0)
        assert reading.true_value == 10.0
        assert reading.error == pytest.approx(0.0)
        assert reading.interval.center == pytest.approx(10.0)
        assert reading.interval.width == pytest.approx(2.0)

    def test_reading_is_correct_by_construction(self):
        rng = np.random.default_rng(1)
        sensor = make_sensor(0.5)
        for _ in range(100):
            assert sensor.measure(3.0, rng).is_correct

    def test_worst_case_noise_still_correct(self):
        rng = np.random.default_rng(2)
        sensor = make_sensor(1.0, WorstCaseNoise())
        for _ in range(50):
            reading = sensor.measure(-4.0, rng)
            assert reading.is_correct
            # The true value sits exactly on one interval endpoint.
            assert min(
                abs(reading.interval.lo - (-4.0)), abs(reading.interval.hi - (-4.0))
            ) == pytest.approx(0.0, abs=1e-12)

    def test_interval_width_property(self):
        assert make_sensor(3.0).interval_width == pytest.approx(3.0)

    def test_name_property(self):
        assert make_sensor().name == "s"

    def test_measure_many(self):
        rng = np.random.default_rng(3)
        sensor = make_sensor(1.0)
        readings = sensor.measure_many(np.array([1.0, 2.0, 3.0]), rng)
        assert len(readings) == 3
        assert [r.true_value for r in readings] == [1.0, 2.0, 3.0]
        assert all(r.is_correct for r in readings)

    @given(st.floats(min_value=-100, max_value=100), st.floats(min_value=0.01, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_property_correctness_invariant(self, true_value, width):
        rng = np.random.default_rng(0)
        sensor = make_sensor(width)
        reading = sensor.measure(true_value, rng)
        assert reading.interval.contains(true_value)
        assert reading.interval.width == pytest.approx(width)
