"""Unit tests for sensor specifications and the encoder derivation."""

import pytest

from repro.core import SensorError
from repro.sensors import EncoderSpec, SensorSpec


class TestSensorSpec:
    def test_half_width_sums_error_sources(self):
        spec = SensorSpec(name="s", precision=0.5, jitter=0.1, implementation_error=0.05)
        assert spec.half_width == pytest.approx(0.65)
        assert spec.interval_width == pytest.approx(1.3)

    def test_interval_for_centres_on_measurement(self):
        spec = SensorSpec(name="s", precision=0.5)
        interval = spec.interval_for(10.0)
        assert interval.lo == pytest.approx(9.5)
        assert interval.hi == pytest.approx(10.5)
        assert interval.center == pytest.approx(10.0)

    def test_from_interval_width(self):
        spec = SensorSpec.from_interval_width("gps", 1.0)
        assert spec.interval_width == pytest.approx(1.0)

    def test_from_interval_width_rejects_non_positive(self):
        with pytest.raises(SensorError):
            SensorSpec.from_interval_width("gps", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec(name="", precision=1.0)

    def test_negative_precision_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec(name="s", precision=-0.1)

    def test_negative_jitter_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec(name="s", precision=0.1, jitter=-0.1)

    def test_zero_total_width_rejected(self):
        with pytest.raises(SensorError):
            SensorSpec(name="s", precision=0.0)


class TestEncoderSpec:
    def test_default_landshark_encoder_width(self):
        # 192 cycles/rev, 0.5 % measuring error, 0.05 % jitter at 10 mph:
        # the paper computes a 0.2 mph interval.
        spec = EncoderSpec(name="enc").to_sensor_spec()
        assert spec.interval_width == pytest.approx(0.2, abs=1e-9)

    def test_width_scales_with_nominal_speed(self):
        slow = EncoderSpec(name="enc", nominal_speed=5.0).to_sensor_spec()
        fast = EncoderSpec(name="enc", nominal_speed=20.0).to_sensor_spec()
        assert fast.interval_width > slow.interval_width

    def test_invalid_cycles_rejected(self):
        with pytest.raises(SensorError):
            EncoderSpec(name="enc", cycles_per_revolution=0)

    def test_negative_errors_rejected(self):
        with pytest.raises(SensorError):
            EncoderSpec(name="enc", measuring_error=-0.1)
        with pytest.raises(SensorError):
            EncoderSpec(name="enc", jitter_error=-0.1)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(SensorError):
            EncoderSpec(name="enc", nominal_speed=0.0)
