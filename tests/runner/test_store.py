"""The content-addressed artifact store."""

import dataclasses
import json

import pytest

from repro.core import ExperimentError
from repro.runner import ArtifactStore, default_store
from repro.runner.store import STORE_ENV_VAR
from repro.scenarios import ComparisonCase, ComparisonScenario, spec_key


def spec(**overrides) -> ComparisonScenario:
    defaults = dict(
        name="store-test",
        cases=(ComparisonCase(label="case", lengths=(1.0, 2.0, 3.0), fa=1),),
        samples=10,
        shard_samples=10,
    )
    defaults.update(overrides)
    return ComparisonScenario(**defaults)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"kind": "comparison", "cases": []}
        path = store.save(spec(), payload, meta={"shards": 1})
        assert path == store.path_for(spec())
        assert path.name == f"{spec_key(spec())}.json"
        document = store.load(spec())
        assert document["payload"] == payload
        assert document["meta"]["shards"] == 1
        assert document["spec"]["name"] == "store-test"

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load(spec()) is None

    def test_document_is_valid_json_on_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(spec(), {"kind": "comparison"})
        document = json.loads(path.read_text())
        assert document["key"] == spec_key(spec())

    def test_no_scratch_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(spec(), {"kind": "comparison"})
        assert list(tmp_path.glob("*.tmp")) == []


class TestInvalidation:
    def test_spec_change_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(spec(), {"kind": "comparison"})
        assert store.load(spec(samples=20)) is None
        assert store.load(dataclasses.replace(spec(), seed=1)) is None

    def test_mismatched_embedded_spec_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(spec(), {"kind": "comparison"})
        # Simulate a hand-edited artifact: same filename, different spec.
        document = json.loads(path.read_text())
        document["spec"]["samples"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ExperimentError, match="does not match"):
            store.load(spec())

    def test_corrupt_artifact_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.path_for(spec()).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(spec()).write_text("not json")
        with pytest.raises(ExperimentError, match="unreadable"):
            store.load(spec())


class TestEntriesAndDefaults:
    def test_entries_summarise_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.entries() == []
        store.save(spec(), {"kind": "comparison"})
        store.save(spec(name="store-test-2"), {"kind": "comparison"})
        names = {entry["name"] for entry in store.entries()}
        assert names == {"store-test", "store-test-2"}

    def test_default_store_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        assert default_store().root == tmp_path / "env-store"
        assert default_store(tmp_path / "explicit").root == tmp_path / "explicit"
        monkeypatch.delenv(STORE_ENV_VAR)
        assert str(default_store().root).endswith("results/store")
