"""The content-addressed artifact store."""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.runner import ArtifactStore, default_store
from repro.runner.store import STORE_ENV_VAR
from repro.scenarios import ComparisonCase, ComparisonScenario, spec_key


def spec(**overrides) -> ComparisonScenario:
    defaults = dict(
        name="store-test",
        cases=(ComparisonCase(label="case", lengths=(1.0, 2.0, 3.0), fa=1),),
        samples=10,
        shard_samples=10,
    )
    defaults.update(overrides)
    return ComparisonScenario(**defaults)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"kind": "comparison", "cases": []}
        path = store.save(spec(), payload, meta={"shards": 1})
        assert path == store.path_for(spec())
        assert path.name == f"{spec_key(spec())}.json"
        document = store.load(spec())
        assert document["payload"] == payload
        assert document["meta"]["shards"] == 1
        assert document["spec"]["name"] == "store-test"

    def test_miss_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load(spec()) is None

    def test_document_is_valid_json_on_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(spec(), {"kind": "comparison"})
        document = json.loads(path.read_text())
        assert document["key"] == spec_key(spec())

    def test_no_scratch_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(spec(), {"kind": "comparison"})
        assert list(tmp_path.glob("*.tmp")) == []


class TestInvalidation:
    def test_spec_change_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(spec(), {"kind": "comparison"})
        assert store.load(spec(samples=20)) is None
        assert store.load(dataclasses.replace(spec(), seed=1)) is None


def corruptions():
    """Ways an artifact on disk can rot; each must read back as a miss."""
    return {
        "not-json": lambda text: "not json {",
        "truncated": lambda text: text[: len(text) // 2],
        "empty": lambda text: "",
        "json-but-not-a-document": lambda text: json.dumps(["wrong", "shape"]),
        "missing-payload": lambda text: json.dumps(
            {key: value for key, value in json.loads(text).items() if key != "payload"}
        ),
        "mismatched-spec": lambda text: json.dumps(
            {**json.loads(text), "spec": {**json.loads(text)["spec"], "samples": 999}}
        ),
    }


class TestCorruptionRobustness:
    """Corrupt artifacts are cache misses, not crashes (then healed on save)."""

    @pytest.mark.parametrize("kind", sorted(corruptions()))
    def test_corrupt_artifact_is_a_cache_miss(self, tmp_path, kind):
        store = ArtifactStore(tmp_path)
        path = store.save(spec(), {"kind": "comparison", "cases": []})
        path.write_text(corruptions()[kind](path.read_text()), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="cache miss"):
            assert store.load(spec()) is None

    @pytest.mark.parametrize("kind", sorted(corruptions()))
    def test_save_heals_a_corrupt_artifact(self, tmp_path, kind):
        store = ArtifactStore(tmp_path)
        payload = {"kind": "comparison", "cases": []}
        path = store.save(spec(), payload)
        path.write_text(corruptions()[kind](path.read_text()), encoding="utf-8")
        store.save(spec(), payload)
        document = store.load(spec())
        assert document is not None and document["payload"] == payload

    def test_runner_resimulates_through_a_corrupt_artifact(self, tmp_path):
        # End to end: run → corrupt the stored artifact → run again.  The
        # second run must not crash, must not serve the corrupt bytes, and
        # must leave a healed artifact behind for the third run to hit.
        from repro.runner import run_scenario
        from repro.scenarios import ComparisonCase as Case

        scenario = ComparisonScenario(
            name="store-corruption-e2e",
            engine="batch",
            samples=40,
            shard_samples=20,
            cases=(Case(label="case", lengths=(1.0, 2.0, 3.0), fa=1),),
        )
        store = ArtifactStore(tmp_path)
        first = run_scenario(scenario, store=store)
        assert not first.cached
        Path(first.store_path).write_text("garbage", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="cache miss"):
            second = run_scenario(scenario, store=store)
        assert not second.cached
        assert second.payload == first.payload
        third = run_scenario(scenario, store=store)
        assert third.cached
        assert third.payload == first.payload


class TestEntriesAndDefaults:
    def test_entries_summarise_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.entries() == []
        store.save(spec(), {"kind": "comparison"})
        store.save(spec(name="store-test-2"), {"kind": "comparison"})
        names = {entry["name"] for entry in store.entries()}
        assert names == {"store-test", "store-test-2"}

    def test_entries_carry_filesystem_stats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.save(spec(), {"kind": "comparison"})
        (entry,) = store.entries()
        assert entry["size_bytes"] == path.stat().st_size > 0
        assert entry["modified"] == path.stat().st_mtime
        assert entry["path"] == str(path)

    def test_default_store_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        assert default_store().root == tmp_path / "env-store"
        assert default_store(tmp_path / "explicit").root == tmp_path / "explicit"
        monkeypatch.delenv(STORE_ENV_VAR)
        assert str(default_store().root).endswith("results/store")


class TestHousekeeping:
    """latest_index and gc: the ``python -m repro store`` primitives."""

    def populate(self, tmp_path):
        """Three keys for 'store-test' (increasing mtimes) plus one other name."""
        store = ArtifactStore(tmp_path)
        paths = [
            store.save(spec(samples=samples), {"kind": "comparison"})
            for samples in (10, 20, 30)
        ]
        other = store.save(spec(name="store-test-2"), {"kind": "comparison"})
        # Deterministic mtime ordering regardless of filesystem resolution.
        for age, path in enumerate([other, *paths]):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        return store, paths, other

    def test_latest_index_picks_newest_per_name(self, tmp_path):
        store, paths, other = self.populate(tmp_path)
        index = store.latest_index()
        assert set(index) == {"store-test", "store-test-2"}
        assert index["store-test"]["key"] == spec_key(spec(samples=30))
        assert index["store-test"]["path"] == str(paths[-1])
        assert index["store-test-2"]["path"] == str(other)

    def test_gc_keeps_newest_and_returns_deleted(self, tmp_path):
        store, paths, other = self.populate(tmp_path)
        deleted = store.gc(keep_latest=1)
        assert {entry["key"] for entry in deleted} == {
            spec_key(spec(samples=10)),
            spec_key(spec(samples=20)),
        }
        assert [path.exists() for path in paths] == [False, False, True]
        assert other.exists()  # sole key of its name: always kept
        # gc never invalidates the surviving result.
        assert store.load(spec(samples=30)) is not None
        assert store.gc(keep_latest=1) == []  # idempotent

    def test_gc_keep_latest_two(self, tmp_path):
        store, paths, _ = self.populate(tmp_path)
        deleted = store.gc(keep_latest=2)
        assert [entry["key"] for entry in deleted] == [spec_key(spec(samples=10))]
        assert [path.exists() for path in paths] == [False, True, True]

    def test_gc_rejects_keeping_nothing(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path).gc(keep_latest=0)

    def test_gc_on_missing_root_is_a_no_op(self, tmp_path):
        assert ArtifactStore(tmp_path / "never-created").gc() == []


class TestIdenticalMtimes:
    """Deterministic recency under mtime ties: equal mtimes break by key.

    Coarse filesystem timestamps routinely give back-to-back saves the
    same mtime; before the tie-break, latest_index and gc depended on
    directory iteration order — two runs over the same store could pick
    different "newest" artifacts and delete different files.
    """

    def populate(self, tmp_path):
        store = ArtifactStore(tmp_path)
        by_key = {}
        for samples in (10, 20, 30):
            path = store.save(spec(samples=samples), {"kind": "comparison"})
            os.utime(path, (2_000_000, 2_000_000))
            by_key[spec_key(spec(samples=samples))] = path
        return store, by_key

    def test_latest_index_is_stable_under_ties(self, tmp_path):
        store, by_key = self.populate(tmp_path)
        winner = max(by_key)  # (modified, key, path): mtimes equal → key decides
        for _ in range(3):
            entry = store.latest_index()["store-test"]
            assert entry["key"] == winner
            assert entry["path"] == str(by_key[winner])

    def test_gc_deletes_the_same_files_every_time(self, tmp_path):
        store, by_key = self.populate(tmp_path)
        winner = max(by_key)
        deleted = store.gc(keep_latest=1)
        assert [entry["key"] for entry in deleted] == sorted(set(by_key) - {winner}, reverse=True)
        assert by_key[winner].exists()
        assert all(not path.exists() for key, path in by_key.items() if key != winner)

    def test_gc_and_latest_index_agree_on_the_survivor(self, tmp_path):
        store, by_key = self.populate(tmp_path)
        survivor_before = store.latest_index()["store-test"]["key"]
        store.gc(keep_latest=1)
        assert store.latest_index()["store-test"]["key"] == survivor_before
