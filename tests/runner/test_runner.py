"""Runner guarantees: shard invariance, plan determinism, caching."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import ExperimentError
from repro.engine import get_engine
from repro.runner import ArtifactStore, plan_tasks, run_scenario
from repro.scenarios import (
    CaseStudyScenario,
    ComparisonCase,
    ComparisonScenario,
    FigureScenario,
    get_scenario,
    spec_key,
)
from repro.utils.seeding import derive_rng


def table1_scenario(**overrides) -> ComparisonScenario:
    defaults = dict(
        name="runner-test-table1",
        engine="batch",
        samples=4_000,
        shard_samples=1_000,
        cases=(ComparisonCase(label="n3-fa1", lengths=(5.0, 11.0, 17.0), fa=1),),
    )
    defaults.update(overrides)
    return ComparisonScenario(**defaults)


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class TestShardInvariance:
    def test_workers_1_vs_4_bit_equal_on_table1(self):
        spec = table1_scenario()
        serial = run_scenario(spec, workers=1)
        parallel = run_scenario(spec, workers=4)
        assert not serial.cached and not parallel.cached
        assert canonical(serial.payload) == canonical(parallel.payload)

    def test_workers_1_vs_4_bit_equal_on_registered_smoke(self):
        # The acceptance-criterion scenario, exactly as the CLI runs it.
        serial = run_scenario("table1-smoke", workers=1)
        parallel = run_scenario("table1-smoke", workers=4)
        assert canonical(serial.payload) == canonical(parallel.payload)

    def test_workers_invariance_with_faults_and_scalar_engine(self):
        spec = table1_scenario(
            name="runner-test-faulted",
            engine="scalar",
            samples=120,
            shard_samples=40,
            cases=(
                ComparisonCase(
                    label="faulted",
                    lengths=(1.0, 1.0, 1.0, 1.0, 1.0),
                    fa=1,
                    f=2,
                    fault_probability=0.3,
                ),
            ),
        )
        serial = run_scenario(spec, workers=1)
        parallel = run_scenario(spec, workers=3)
        assert canonical(serial.payload) == canonical(parallel.payload)
        (case,) = serial.payload["cases"]
        assert case["rows"][0]["valid_fraction"] < 1.0

    def test_case_study_workers_invariance(self):
        spec = CaseStudyScenario(
            name="runner-test-case-study",
            n_steps=30,
            n_replicas=4,
            shard_replicas=1,
        )
        serial = run_scenario(spec, workers=1)
        parallel = run_scenario(spec, workers=4)
        assert canonical(serial.payload) == canonical(parallel.payload)
        assert serial.shards == 4

    def test_case_study_same_named_schedules_stay_separate(self):
        # Two distinct fixed permutations both render as "fixed"; the merge
        # keys rows by position, so they must not pool into one total.
        spec = CaseStudyScenario(
            name="runner-test-fixed-pair",
            n_steps=10,
            n_vehicles=2,
            n_replicas=2,
            shard_replicas=1,
            schedules=("fixed:0,1,2,3", "fixed:3,2,1,0"),
        )
        payload = run_scenario(spec, workers=2).payload
        assert [row["schedule_spec"] for row in payload["rows"]] == [
            "fixed:0,1,2,3",
            "fixed:3,2,1,0",
        ]
        for row in payload["rows"]:
            assert row["schedule"] == "fixed"
            assert row["rounds"] == 2 * 2 * 10
        # fixed:0,1,2,3 is the ascending LandShark order (encoders first) and
        # fixed:3,2,1,0 the descending one — their violation totals differ.
        totals = [row["upper_violations"] + row["lower_violations"] for row in payload["rows"]]
        assert totals[0] != totals[1]

    def test_default_engine_is_pinned_into_spec_and_key(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        store = ArtifactStore(tmp_path)
        spec = table1_scenario(name="runner-test-default-engine", engine=None, samples=60, shard_samples=30)
        run = run_scenario(spec, store=store)
        assert run.spec.engine == "scalar"  # the resolved default, not None
        # The stored artifact is addressed (and self-described) by the
        # resolved backend, so another REPRO_ENGINE session cannot hit it.
        assert run.key != spec_key(spec)
        assert run.key == spec_key(dataclasses.replace(spec, engine="scalar"))
        rerun = run_scenario(spec, store=store)
        assert rerun.cached


class TestPlanning:
    def test_plan_is_a_pure_function_of_the_spec(self):
        spec = table1_scenario()
        assert plan_tasks(spec) == plan_tasks(spec)
        assert len(plan_tasks(spec)) == 4

    def test_uneven_sample_split_covers_budget(self):
        spec = table1_scenario(samples=1_001, shard_samples=400)
        tasks = plan_tasks(spec)
        assert [task.params[2] for task in tasks] == [400, 400, 201]

    def test_single_shard_matches_engine_compare(self):
        # One shard consumes the stream exactly like Engine.compare, so the
        # runner reproduces a direct engine call bit-for-bit.
        spec = table1_scenario(samples=500, shard_samples=500)
        run = run_scenario(spec, workers=1)
        comparison = get_engine("batch").compare(
            spec.cases[0].comparison_config(),
            spec.cases[0].schedule_objects(),
            samples=500,
            rng=derive_rng(spec.seed, 0, 0),
        )
        for row, payload_row in zip(comparison.rows, run.payload["cases"][0]["rows"]):
            assert payload_row["expected_width"] == pytest.approx(row.expected_width, abs=0)
            assert payload_row["detected_fraction"] == pytest.approx(row.detected_fraction, abs=0)

    def test_workers_must_be_positive(self):
        with pytest.raises(ExperimentError):
            run_scenario(table1_scenario(), workers=0)

    def test_legacy_backend_without_per_sensor_arrays_fails_loudly(self):
        # RoundsResult documents flagged=None as valid for older third-party
        # backends; the runner must turn that into a diagnostic, not a
        # TypeError inside a worker.
        from repro.engine import Engine, RoundsResult, register_engine

        class LegacyEngine(Engine):
            name = "legacy-stub"

            def run_rounds(
                self, config, schedule, attack="stretch", faults=None, samples=10_000, rng=None
            ):
                zeros = np.zeros(samples)
                return RoundsResult(
                    schedule_name=schedule.name,
                    fusion_lo=zeros,
                    fusion_hi=zeros + 1.0,
                    valid=np.ones(samples, dtype=bool),
                    attacker_detected=np.zeros(samples, dtype=bool),
                )

            def run_case_study(self, config=None, schedules=None, **options):
                raise NotImplementedError

        register_engine("legacy-stub", LegacyEngine, replace=True)
        spec = table1_scenario(name="runner-test-legacy", engine="legacy-stub", samples=20, shard_samples=20)
        with pytest.raises(ExperimentError, match="per-sensor flagged"):
            run_scenario(spec)


class TestFigureScenarios:
    def test_figure_payload_is_deterministic(self):
        spec = FigureScenario(name="runner-test-figure", figure="fig4-worst-case")
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert canonical(a.payload) == canonical(b.payload)
        assert a.payload["worst_case_by_attacked_set"]["0"] >= a.payload["no_attack_width"]

    def test_registered_figures_run_and_hold_their_claims(self):
        fig2 = run_scenario("fig2-no-optimal-policy").payload
        assert fig2["no_commitment_is_universally_optimal"]
        fig3 = run_scenario("fig3-theorem1").payload
        assert fig3["case1_optimal"] and fig3["case2_optimal"]
        fig5 = run_scenario("fig5-schedule-examples").payload
        assert fig5["ascending_better_in_5a"]
        assert fig5["descending_no_worse_in_5b"]


class TestCaching:
    def test_second_run_is_served_from_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = table1_scenario(samples=400, shard_samples=200)
        first = run_scenario(spec, workers=2, store=store)
        second = run_scenario(spec, workers=1, store=store)
        assert not first.cached and second.cached
        assert canonical(first.payload) == canonical(second.payload)
        assert second.store_path == first.store_path

    def test_force_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = FigureScenario(name="runner-test-force", figure="fig1-marzullo")
        run_scenario(spec, store=store)
        forced = run_scenario(spec, store=store, force=True)
        assert not forced.cached

    def test_spec_change_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = table1_scenario(samples=400, shard_samples=200)
        run_scenario(spec, store=store)
        rerun = run_scenario(dataclasses.replace(spec, seed=1), store=store)
        assert not rerun.cached


class TestPayloadShape:
    def test_comparison_payload_schema(self):
        run = run_scenario(table1_scenario(samples=600, shard_samples=300))
        (case,) = run.payload["cases"]
        assert {"label", "lengths", "fa", "f", "attack", "fault_probability", "rows"} <= set(case)
        for row in case["rows"]:
            assert row["samples"] == 600
            assert np.isfinite(row["expected_width"])
            assert len(row["flagged_fraction_per_sensor"]) == 3
        ascending, descending = case["rows"]
        assert ascending["expected_width"] < descending["expected_width"]

    def test_scalar_case_study_matches_engine_route(self):
        run = run_scenario(get_scenario("table2-scalar"), workers=3)
        from repro.vehicle import CaseStudyConfig, run_case_study

        reference = run_case_study(
            CaseStudyConfig(n_steps=60, n_vehicles=2, seed=2014), engine="scalar"
        )
        for row in run.payload["rows"]:
            stats = reference.for_schedule(row["schedule"])
            assert row["upper_violations"] == stats.upper_violations
            assert row["lower_violations"] == stats.lower_violations
