"""The registry-driven engine conformance suite.

One contract, every backend: a registered engine must be bit-identical to
the scalar reference oracle under the deterministic attack specs, fill the
complete :class:`~repro.engine.base.RoundsResult` (per-sensor arrays
included), and consume the shared random stream with perfect discipline.
``tests/engine/test_conformance.py`` parametrises these checks over
:func:`repro.engine.list_engines`, so a new backend — the fused engine
today, a numba/jax engine tomorrow — inherits the whole suite the moment
``register_engine`` runs; nothing needs hand-wiring per backend.

The module holds the conformance *matrix* (configurations × schedules ×
attacks × fault models) and the check implementations; scalar-oracle
results are memoised per case so the expensive reference loop runs once
regardless of how many engines are registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.batch.rounds import BatchTransientFaults, batch_orders, sample_correct_bounds
from repro.channel import ChannelSpec
from repro.engine import RoundsResult, get_engine
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)

__all__ = [
    "ConformanceCase",
    "CONFORMANCE_MATRIX",
    "conformance_ids",
    "assert_rounds_equal",
    "oracle_rounds",
    "check_oracle_parity",
    "check_result_completeness",
    "check_rng_discipline",
]

_SCHEDULES = {
    "ascending": AscendingSchedule,
    "descending": DescendingSchedule,
    "random": RandomSchedule,
    "fixed": lambda: FixedSchedule((2, 0, 3, 1, 4)),
}


@dataclass(frozen=True)
class ConformanceCase:
    """One cell of the conformance matrix (hashable, so oracles memoise)."""

    label: str
    lengths: tuple[float, ...]
    fa: int
    schedule: str
    attack: str = "stretch"
    f: int | None = None
    fault_probability: float = 0.0
    samples: int = 96
    seed: int = 2014
    #: Optional lossy-channel spec (frozen, so the case stays hashable).
    channel: ChannelSpec | None = None

    def config(self) -> ScheduleComparisonConfig:
        return ScheduleComparisonConfig(lengths=self.lengths, fa=self.fa, f=self.f)

    def schedule_object(self):
        return _SCHEDULES[self.schedule]()

    def faults(self) -> BatchTransientFaults | None:
        if self.fault_probability == 0.0:
            return None
        return BatchTransientFaults(probability=self.fault_probability)

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


#: The conformance matrix: stretch (both sides) and the exact expectation
#: attacker, transient faults on and off, deterministic / fixed / random
#: schedules, single and multi-sensor attacks.  The expectation cells run
#: tiny batches — the scalar oracle's grid search costs seconds per round.
CONFORMANCE_MATRIX: tuple[ConformanceCase, ...] = (
    ConformanceCase("stretch-asc", (5.0, 11.0, 17.0), 1, "ascending"),
    ConformanceCase("stretch-desc-fa2", (2.0, 3.0, 3.0, 6.0, 8.0), 2, "descending"),
    ConformanceCase("stretch-left-fixed", (2.0, 3.0, 3.0, 6.0, 8.0), 2, "fixed", attack="stretch-left"),
    ConformanceCase("stretch-random", (1.0, 2.0, 3.0, 4.0, 5.0), 1, "random"),
    ConformanceCase("truthful-desc", (5.0, 11.0, 17.0), 1, "descending", attack="truthful"),
    ConformanceCase(
        "stretch-faults", (1.0, 1.0, 1.0, 1.0, 1.0), 1, "ascending", f=2,
        fault_probability=0.35, samples=256,
    ),
    ConformanceCase(
        "stretch-random-faults", (2.0, 3.0, 3.0, 6.0, 8.0), 2, "random",
        fault_probability=0.2, samples=128,
    ),
    ConformanceCase("expectation-asc", (5.0, 11.0, 17.0), 1, "ascending", attack="expectation", samples=8),
    ConformanceCase(
        "expectation-conservative-fa2", (5.0, 5.0, 5.0, 14.0, 17.0), 2, "descending",
        attack="expectation-conservative", samples=4,
    ),
    # Lossy-channel cells: every loss model, delay, and retransmission
    # budget, crossed with schedules, attacks, and the fault model — the
    # bit-identity contract extends to the channel counter arrays.
    ConformanceCase(
        "channel-iid-asc", (5.0, 11.0, 17.0), 1, "ascending",
        channel=ChannelSpec(model="iid", loss=0.3), samples=128,
    ),
    ConformanceCase(
        "channel-iid-retx-desc", (2.0, 3.0, 3.0, 6.0, 8.0), 2, "descending",
        channel=ChannelSpec(model="iid", loss=0.35, retransmit_budget=2), samples=128,
    ),
    ConformanceCase(
        "channel-delay-random", (1.0, 2.0, 3.0, 4.0, 5.0), 1, "random",
        channel=ChannelSpec(model="iid", loss=0.15, delay=0.4, max_delay=3, retransmit_budget=1),
        samples=128,
    ),
    ConformanceCase(
        "channel-burst-fixed", (2.0, 3.0, 3.0, 6.0, 8.0), 2, "fixed",
        channel=ChannelSpec(
            model="gilbert-elliott", good_to_bad=0.3, bad_to_good=0.4,
            loss_good=0.05, loss_bad=0.9, retransmit_budget=1,
        ),
        samples=128,
    ),
    ConformanceCase(
        "channel-truthful-heavy-loss", (5.0, 11.0, 17.0), 1, "descending", attack="truthful",
        channel=ChannelSpec(model="iid", loss=0.7, delay=0.3, max_delay=2), samples=160,
    ),
    ConformanceCase(
        "channel-faults", (1.0, 1.0, 1.0, 1.0, 1.0), 1, "ascending", f=2,
        fault_probability=0.35,
        channel=ChannelSpec(model="iid", loss=0.25, retransmit_budget=1), samples=160,
    ),
)


def conformance_ids(case: ConformanceCase) -> str:
    return case.label


def assert_rounds_equal(a: RoundsResult, b: RoundsResult) -> None:
    """Bit-for-bit equality of two :class:`RoundsResult` instances.

    The per-sensor extension arrays are part of the contract: broadcasts
    and flags must match, with the NaN / no-flag convention on invalid
    (empty-fusion) rows.
    """
    assert a.schedule_name == b.schedule_name
    np.testing.assert_array_equal(a.fusion_lo, b.fusion_lo)
    np.testing.assert_array_equal(a.fusion_hi, b.fusion_hi)
    np.testing.assert_array_equal(a.valid, b.valid)
    np.testing.assert_array_equal(a.attacker_detected, b.attacker_detected)
    np.testing.assert_array_equal(a.broadcast_lo, b.broadcast_lo)
    np.testing.assert_array_equal(a.broadcast_hi, b.broadcast_hi)
    np.testing.assert_array_equal(a.flagged, b.flagged)
    # Channel counters are physical per-round counts and part of the
    # bit-identity contract; both sides must agree on their presence too.
    assert (a.channel_dropped is None) == (b.channel_dropped is None)
    if a.channel_dropped is not None:
        np.testing.assert_array_equal(a.channel_dropped, b.channel_dropped)
        np.testing.assert_array_equal(a.channel_retransmits, b.channel_retransmits)


def run_rounds(engine_name: str, case: ConformanceCase) -> RoundsResult:
    """One engine's rounds for a conformance case (fresh RNG per call)."""
    return get_engine(engine_name).run_rounds(
        case.config(),
        case.schedule_object(),
        case.attack,
        case.faults(),
        case.samples,
        case.rng(),
        case.channel,
    )


@lru_cache(maxsize=None)
def oracle_rounds(case: ConformanceCase) -> RoundsResult:
    """The scalar reference result, memoised across engine parametrisations."""
    return run_rounds("scalar", case)


def check_oracle_parity(engine_name: str, case: ConformanceCase) -> None:
    """The engine's rounds are bit-identical to the scalar oracle's."""
    assert_rounds_equal(oracle_rounds(case), run_rounds(engine_name, case))


def check_result_completeness(engine_name: str, case: ConformanceCase) -> None:
    """The engine fills the full result: shapes, per-sensor arrays, conventions."""
    result = run_rounds(engine_name, case)
    samples, n = case.samples, len(case.lengths)
    assert result.samples == samples
    assert result.fusion_lo.shape == (samples,)
    assert result.fusion_hi.shape == (samples,)
    assert result.valid.shape == (samples,)
    assert result.valid.dtype == bool
    assert result.attacker_detected.shape == (samples,)
    for array in (result.broadcast_lo, result.broadcast_hi, result.flagged):
        assert array is not None, "per-sensor arrays are part of the engine contract"
        assert array.shape == (samples, n)
    valid = result.valid
    # Valid rows carry well-formed bounds; invalid rows carry the NaN /
    # no-flag convention on every backend.
    assert (result.fusion_lo[valid] <= result.fusion_hi[valid]).all()
    assert np.isnan(result.fusion_lo[~valid]).all()
    assert (result.broadcast_lo[valid] <= result.broadcast_hi[valid]).all()
    assert np.isnan(result.broadcast_lo[~valid]).all()
    assert not result.flagged[~valid].any()
    rates = result.flagged_fraction_per_sensor
    assert rates.shape == (n,)
    if bool(valid.any()):
        assert ((rates >= 0.0) & (rates <= 1.0)).all()
    if case.channel is None:
        assert result.channel_dropped is None
        assert result.channel_retransmits is None
    else:
        for counters in (result.channel_dropped, result.channel_retransmits):
            assert counters is not None, "channel counters are part of the contract"
            assert counters.shape == (samples,)
            assert (counters >= 0).all()
        assert (result.channel_dropped <= n).all()
        assert (result.channel_retransmits <= case.channel.retransmit_budget).all()


def check_rng_discipline(engine_name: str, case: ConformanceCase) -> None:
    """Deterministic attacks consume exactly the shared sampling stream.

    Every engine draws correct bounds, transmission orders and transient
    faults through the shared primitives and nothing else — that is what
    makes engine results bit-comparable and lets callers interleave
    engines on one stream.  After ``run_rounds`` the engine's generator
    must sit exactly where the reference consumption leaves it.
    """
    config = case.config()
    engine_rng = case.rng()
    get_engine(engine_name).run_rounds(
        config,
        case.schedule_object(),
        case.attack,
        case.faults(),
        case.samples,
        engine_rng,
        case.channel,
    )
    # The channel draws from a *spawned* child generator, which must leave
    # the parent stream untouched — so the reference consumption below is
    # identical whether or not a channel is configured.
    reference = case.rng()
    lowers, uppers = sample_correct_bounds(
        config.lengths, config.true_value, case.samples, reference
    )
    batch_orders(case.schedule_object(), uppers - lowers, reference)
    faults = case.faults()
    if faults is not None:
        eligible = np.ones((case.samples, config.n), dtype=bool)
        eligible[:, list(config.resolved_attacked)] = False
        faults.apply(lowers, uppers, eligible, reference)
    np.testing.assert_array_equal(engine_rng.random(8), reference.random(8))
