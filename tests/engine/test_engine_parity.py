"""Randomized engine parity on top of the conformance suite.

The deterministic parity matrix lives in ``conformance.py`` and runs for
every registered engine in ``test_conformance.py``; this module adds the
hypothesis fuzz over random configurations — again parametrised over the
registry, so new backends inherit the fuzz too — plus the
:class:`~repro.engine.base.RoundsResult` accessor coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conformance import assert_rounds_equal
from repro.engine import BatchEngine, ScalarEngine, StretchAttack, get_engine, list_engines
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
)

#: The oracle fuzzes against every other registered backend.
NON_ORACLE_ENGINES = [name for name in list_engines() if name != "scalar"]


@pytest.mark.parametrize("engine_name", NON_ORACLE_ENGINES)
@given(
    lengths=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=7),
    attacked_index=st.integers(min_value=0, max_value=6),
    side=st.sampled_from([1, -1]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_engines_bitmatch_random_configs(engine_name, lengths, attacked_index, side, seed):
    lengths = tuple(lengths)
    config = ScheduleComparisonConfig(
        lengths=lengths, fa=1, attacked_indices=(attacked_index % len(lengths),)
    )
    schedule = AscendingSchedule() if seed % 2 else DescendingSchedule()
    attack = StretchAttack(side=side)
    scalar = ScalarEngine().run_rounds(
        config, schedule, attack, None, 8, np.random.default_rng(seed)
    )
    other = get_engine(engine_name).run_rounds(
        config, schedule, attack, None, 8, np.random.default_rng(seed)
    )
    assert_rounds_equal(scalar, other)


def test_engine_compare_rows_match():
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    schedules = [AscendingSchedule(), DescendingSchedule()]
    scalar = ScalarEngine().compare(
        config, schedules, samples=64, rng=np.random.default_rng(9)
    )
    for name in NON_ORACLE_ENGINES:
        other = get_engine(name).compare(
            config, schedules, samples=64, rng=np.random.default_rng(9)
        )
        assert scalar.rows == other.rows


def test_rounds_result_accessors():
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    result = BatchEngine().run_rounds(config, DescendingSchedule(), samples=500)
    assert result.samples == 500
    assert result.valid.all()
    assert result.mean_width == pytest.approx(float(result.widths.mean()))
    assert 0.0 <= result.detected_fraction <= 1.0
    row = result.to_row()
    assert row.schedule_name == "descending"
    assert row.combinations == 500


def test_flagged_fraction_requires_per_sensor_arrays():
    from repro.core.exceptions import ExperimentError
    from repro.engine import RoundsResult

    legacy = RoundsResult(
        schedule_name="ascending",
        fusion_lo=np.zeros(4),
        fusion_hi=np.ones(4),
        valid=np.ones(4, dtype=bool),
        attacker_detected=np.zeros(4, dtype=bool),
    )
    with pytest.raises(ExperimentError):
        legacy.flagged_fraction_per_sensor
