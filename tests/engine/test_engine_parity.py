"""Scalar/Batch engine parity: identical RoundsResult under the stretch attacker.

Both engines draw correct intervals through the same
``sample_correct_bounds`` call and (when faults are configured) the same
``BatchTransientFaults.apply`` call, so for deterministic schedules their
RNG streams coincide and the per-round result arrays must match
bit-for-bit.  This extends the ``tests/batch`` equivalence suites from the
raw drivers to the public engine API.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchTransientFaults
from repro.engine import BatchEngine, ScalarEngine, StretchAttack
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
    ScheduleComparisonConfig,
)


def _assert_rounds_equal(a, b):
    assert a.schedule_name == b.schedule_name
    np.testing.assert_array_equal(a.fusion_lo, b.fusion_lo)
    np.testing.assert_array_equal(a.fusion_hi, b.fusion_hi)
    np.testing.assert_array_equal(a.valid, b.valid)
    np.testing.assert_array_equal(a.attacker_detected, b.attacker_detected)
    # Per-sensor extension: broadcasts and detection flags are part of the
    # parity contract too (NaN broadcasts / no flags on invalid rows).
    np.testing.assert_array_equal(a.broadcast_lo, b.broadcast_lo)
    np.testing.assert_array_equal(a.broadcast_hi, b.broadcast_hi)
    np.testing.assert_array_equal(a.flagged, b.flagged)


def _run_both(config, schedule, seed, attack="stretch", faults=None, samples=48):
    scalar = ScalarEngine().run_rounds(
        config, schedule, attack, faults, samples, np.random.default_rng(seed)
    )
    batch = BatchEngine().run_rounds(
        config, schedule, attack, faults, samples, np.random.default_rng(seed)
    )
    return scalar, batch


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=7),
    st.integers(min_value=0, max_value=6),
    st.sampled_from([1, -1]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_engines_bitmatch_random_configs(lengths, attacked_index, side, seed):
    lengths = tuple(lengths)
    config = ScheduleComparisonConfig(
        lengths=lengths, fa=1, attacked_indices=(attacked_index % len(lengths),)
    )
    schedule = AscendingSchedule() if seed % 2 else DescendingSchedule()
    scalar, batch = _run_both(config, schedule, seed, attack=StretchAttack(side=side), samples=8)
    _assert_rounds_equal(scalar, batch)


@pytest.mark.parametrize(
    "schedule",
    [AscendingSchedule(), DescendingSchedule(), FixedSchedule((2, 0, 3, 1, 4))],
    ids=lambda s: s.name,
)
@pytest.mark.parametrize("attack", ["stretch", "stretch-left", "truthful"])
def test_engines_bitmatch_fa2(schedule, attack):
    config = ScheduleComparisonConfig(lengths=(2.0, 3.0, 3.0, 6.0, 8.0), fa=2)
    scalar, batch = _run_both(config, schedule, seed=11, attack=attack)
    _assert_rounds_equal(scalar, batch)
    assert scalar.valid.all()


def test_engines_bitmatch_random_schedule():
    # Both engines draw per-round permutations through the same vectorized
    # batch_orders call, so even RandomSchedule is bit-reproducible.
    config = ScheduleComparisonConfig(lengths=(1.0, 2.0, 3.0, 4.0, 5.0), fa=1)
    scalar, batch = _run_both(config, RandomSchedule(), seed=23, samples=64)
    _assert_rounds_equal(scalar, batch)


def test_engines_bitmatch_with_transient_faults():
    # Faults can produce empty fusions; both engines must report the same
    # rows as invalid (the scalar engine converts EmptyFusionError into the
    # batch engine's valid=False convention).
    config = ScheduleComparisonConfig(lengths=(1.0, 1.0, 1.0, 1.0, 1.0), fa=1, f=2)
    faults = BatchTransientFaults(probability=0.35)
    scalar, batch = _run_both(
        config, AscendingSchedule(), seed=7, faults=faults, samples=256
    )
    _assert_rounds_equal(scalar, batch)
    assert not scalar.valid.all(), "expected some empty fusions under heavy faults"
    assert np.isnan(scalar.fusion_lo[~scalar.valid]).all()


def test_engine_compare_rows_match():
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    schedules = [AscendingSchedule(), DescendingSchedule()]
    scalar = ScalarEngine().compare(
        config, schedules, samples=64, rng=np.random.default_rng(9)
    )
    batch = BatchEngine().compare(
        config, schedules, samples=64, rng=np.random.default_rng(9)
    )
    assert scalar.rows == batch.rows


def test_rounds_result_accessors():
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    result = BatchEngine().run_rounds(config, DescendingSchedule(), samples=500)
    assert result.samples == 500
    assert result.valid.all()
    assert result.mean_width == pytest.approx(float(result.widths.mean()))
    assert 0.0 <= result.detected_fraction <= 1.0
    row = result.to_row()
    assert row.schedule_name == "descending"
    assert row.combinations == 500


def test_per_sensor_arrays_are_populated_and_consistent():
    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    for engine in (ScalarEngine(), BatchEngine()):
        result = engine.run_rounds(
            config, AscendingSchedule(), samples=64, rng=np.random.default_rng(3)
        )
        assert result.broadcast_lo.shape == (64, 3)
        assert result.broadcast_hi.shape == (64, 3)
        assert result.flagged.shape == (64, 3)
        # Broadcast intervals are well-formed wherever the round is valid.
        assert (result.broadcast_lo[result.valid] <= result.broadcast_hi[result.valid]).all()
        # The per-round attacker_detected mask is derivable from the
        # per-sensor flags and the attacked set (sensor 0 is the most precise).
        np.testing.assert_array_equal(result.attacker_detected, result.flagged[:, 0])
        rates = result.flagged_fraction_per_sensor
        assert rates.shape == (3,)
        assert ((0.0 <= rates) & (rates <= 1.0)).all()


def test_flagged_fraction_requires_per_sensor_arrays():
    from repro.core.exceptions import ExperimentError
    from repro.engine import RoundsResult

    legacy = RoundsResult(
        schedule_name="ascending",
        fusion_lo=np.zeros(4),
        fusion_hi=np.ones(4),
        valid=np.ones(4, dtype=bool),
        attacker_detected=np.zeros(4, dtype=bool),
    )
    with pytest.raises(ExperimentError):
        legacy.flagged_fraction_per_sensor
