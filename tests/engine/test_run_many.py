"""The packed run_many seam: bit-identity, packing semantics, validation.

``Engine.run_many`` is the contract the serving layer's micro-batcher
stands on: coalescing requests into one engine pass must be *invisible* in
the results.  These tests pin that contract for every registered backend —
the packed vectorized implementations and the base-class reference loop
alike — plus the ``concat_prepared`` packing helper they are built from.
"""

import numpy as np
import pytest

from repro.batch.rounds import (
    BatchRoundConfig,
    TruthfulBatchAttacker,
    concat_prepared,
    prepare_rounds,
    sample_correct_bounds,
)
from repro.core.exceptions import ExperimentError, ScheduleError
from repro.engine import available_engines, get_engine
from repro.scheduling.comparison import ScheduleComparisonConfig
from repro.scheduling.schedule import AscendingSchedule, RandomSchedule

CONFIG = ScheduleComparisonConfig(lengths=(2.0, 3.0, 4.0, 5.0), fa=1)


def reference_loop(engine, config, schedule, attack, budgets, seeds, faults=None):
    return [
        engine.run_rounds(
            config, schedule, attack, faults, samples, np.random.default_rng(seed)
        )
        for samples, seed in zip(budgets, seeds)
    ]


def assert_results_equal(packed, reference):
    assert len(packed) == len(reference)
    for got, want in zip(packed, reference):
        assert got.schedule_name == want.schedule_name
        np.testing.assert_array_equal(got.fusion_lo, want.fusion_lo)
        np.testing.assert_array_equal(got.fusion_hi, want.fusion_hi)
        np.testing.assert_array_equal(got.valid, want.valid)
        np.testing.assert_array_equal(got.attacker_detected, want.attacker_detected)
        np.testing.assert_array_equal(got.broadcast_lo, want.broadcast_lo)
        np.testing.assert_array_equal(got.broadcast_hi, want.broadcast_hi)
        np.testing.assert_array_equal(got.flagged, want.flagged)


@pytest.mark.parametrize("engine_name", sorted(available_engines()))
@pytest.mark.parametrize("attack", ["stretch", "truthful"])
def test_run_many_bit_identical_to_solo_runs(engine_name, attack):
    engine = get_engine(engine_name)
    budgets = [40, 25, 40]
    seeds = [11, 22, 33]
    samples = 8 if engine_name == "scalar" else None
    if samples is not None:  # the scalar loop is slow; shrink, same contract
        budgets = [samples, samples - 3, samples]
    packed = engine.run_many(
        CONFIG,
        AscendingSchedule(),
        attack,
        budgets=budgets,
        rngs=[np.random.default_rng(seed) for seed in seeds],
    )
    reference = reference_loop(engine, CONFIG, AscendingSchedule(), attack, budgets, seeds)
    assert_results_equal(packed, reference)


@pytest.mark.parametrize("engine_name", ["batch", "fused"])
def test_run_many_random_schedule_bit_identical(engine_name):
    # RandomSchedule draws transmission orders from the per-item stream in
    # prepare_rounds — the packing must keep each item's draws separate.
    engine = get_engine(engine_name)
    budgets = [30, 50]
    seeds = [5, 7]
    packed = engine.run_many(
        CONFIG,
        RandomSchedule(),
        "stretch",
        budgets=budgets,
        rngs=[np.random.default_rng(seed) for seed in seeds],
    )
    reference = reference_loop(engine, CONFIG, RandomSchedule(), "stretch", budgets, seeds)
    assert_results_equal(packed, reference)


def test_run_many_single_item_matches_run_rounds():
    engine = get_engine("batch")
    packed = engine.run_many(
        CONFIG, AscendingSchedule(), budgets=[64], rngs=[np.random.default_rng(3)]
    )
    solo = engine.run_rounds(
        CONFIG, AscendingSchedule(), samples=64, rng=np.random.default_rng(3)
    )
    assert_results_equal(packed, [solo])


@pytest.mark.parametrize("engine_name", sorted(available_engines()))
def test_run_many_rejects_bad_arguments(engine_name):
    engine = get_engine(engine_name)
    rng = np.random.default_rng(0)
    with pytest.raises(ExperimentError):
        engine.run_many(CONFIG, AscendingSchedule(), budgets=[], rngs=[])
    with pytest.raises(ExperimentError):
        engine.run_many(CONFIG, AscendingSchedule(), budgets=[10], rngs=None)
    with pytest.raises(ExperimentError):
        engine.run_many(
            CONFIG, AscendingSchedule(), budgets=[10, 10], rngs=[rng]
        )
    with pytest.raises(ExperimentError):
        engine.run_many(CONFIG, AscendingSchedule(), budgets=[0], rngs=[rng])


def _prepared(samples, seed, config=CONFIG, schedule=None):
    round_config = BatchRoundConfig(
        schedule=schedule or AscendingSchedule(),
        attacked_indices=config.resolved_attacked,
        attacker=TruthfulBatchAttacker(),
        f=config.resolved_f,
    )
    rng = np.random.default_rng(seed)
    lo, hi = sample_correct_bounds(config.lengths, config.true_value, samples, rng)
    return prepare_rounds(lo, hi, round_config, rng)


class TestConcatPrepared:
    def test_concatenates_rows_in_order(self):
        first = _prepared(10, 0)
        second = _prepared(15, 1)
        packed = concat_prepared([first, second])
        assert packed.shape == (25, len(CONFIG.lengths))
        np.testing.assert_array_equal(packed.correct_lo[:10], first.correct_lo)
        np.testing.assert_array_equal(packed.correct_lo[10:], second.correct_lo)
        np.testing.assert_array_equal(packed.orders[10:], second.orders)

    def test_single_item_passes_through(self):
        item = _prepared(12, 2)
        assert concat_prepared([item]) is item

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            concat_prepared([])

    def test_rejects_mismatched_plans(self):
        narrow = ScheduleComparisonConfig(lengths=(2.0, 3.0, 4.0), fa=1)
        with pytest.raises(ScheduleError):
            concat_prepared([_prepared(10, 0), _prepared(10, 0, config=narrow)])
