"""Registry-driven engine conformance: every backend, one contract.

Parametrised over :func:`repro.engine.list_engines`, so registering a new
engine automatically subjects it to the whole suite — scalar-oracle bit
parity under the deterministic attack specs, result completeness, RNG
stream discipline, and scenario-payload equality across engines and
worker counts.  CI runs this file as its own job step over all registered
engines (see ``.github/workflows/ci.yml``).
"""

import numpy as np
import pytest

from repro.engine import list_engines
from repro.runner import run_scenario
from repro.scenarios import ComparisonCase, ComparisonScenario

from conformance import (
    CONFORMANCE_MATRIX,
    check_oracle_parity,
    check_result_completeness,
    check_rng_discipline,
    conformance_ids,
)

ENGINES = list_engines()
#: The expectation cells re-run the scalar policy's grid search per round;
#: restricting them to a subset of the matrix keeps the suite fast while
#: the stretch/truthful cells cover every schedule and fault model.
FAST_MATRIX = tuple(c for c in CONFORMANCE_MATRIX if not c.attack.startswith("expectation"))


def test_every_builtin_engine_is_covered():
    # The suite must cover the three shipped backends (and anything else
    # registered by the session under test).
    assert {"scalar", "batch", "fused"} <= set(ENGINES)


@pytest.mark.parametrize("case", CONFORMANCE_MATRIX, ids=conformance_ids)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_bit_parity_with_scalar_oracle(engine_name, case):
    check_oracle_parity(engine_name, case)


@pytest.mark.parametrize("case", FAST_MATRIX, ids=conformance_ids)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_result_completeness(engine_name, case):
    check_result_completeness(engine_name, case)


@pytest.mark.parametrize("case", FAST_MATRIX, ids=conformance_ids)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_rng_stream_discipline(engine_name, case):
    check_rng_discipline(engine_name, case)


@pytest.mark.parametrize("engine_name", ENGINES)
def test_compare_consumes_one_shared_stream(engine_name):
    # Engine.compare must run the schedules sequentially on one stream —
    # the contract that makes a comparison reproducible from (seed, spec).
    from repro.scheduling import AscendingSchedule, DescendingSchedule, ScheduleComparisonConfig
    from repro.engine import get_engine

    config = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)
    engine = get_engine(engine_name)
    schedules = [AscendingSchedule(), DescendingSchedule()]
    merged = engine.compare(config, schedules, samples=64, rng=np.random.default_rng(17))
    rng = np.random.default_rng(17)
    manual = tuple(
        engine.run_rounds(config, schedule, "stretch", None, 64, rng).to_row()
        for schedule in schedules
    )
    assert merged.rows == manual


@pytest.mark.parametrize("engine_name", [name for name in ENGINES if name != "scalar"])
def test_scenario_payloads_identical_across_engines_and_workers(engine_name, tmp_path):
    """The acceptance criterion at the scenario level: any engine, any workers.

    A multi-case comparison scenario (faults on one case, two schedules,
    four shards) must produce the byte-identical payload on this engine as
    on the batch engine, for one and for two workers.
    """

    def spec(engine: str) -> ComparisonScenario:
        return ComparisonScenario(
            name=f"conformance-{engine}",
            engine=engine,
            samples=400,
            shard_samples=100,
            cases=(
                ComparisonCase(label="plain", lengths=(2.0, 3.0, 3.0, 6.0, 8.0), fa=2),
                ComparisonCase(
                    label="faulty",
                    lengths=(1.0, 1.0, 1.0, 1.0, 1.0),
                    fa=1,
                    f=2,
                    fault_probability=0.3,
                ),
            ),
        )

    reference = run_scenario(spec("batch"), workers=1).payload
    for workers in (1, 2):
        payload = run_scenario(spec(engine_name), workers=workers).payload
        assert payload == reference, (
            f"engine={engine_name} workers={workers} diverged from the batch payload"
        )
