"""JIT kernels vs their NumPy counterparts: bit-for-bit equivalence.

The conformance suite pins ``NumbaEngine`` against the scalar oracle; this
module pins the *kernels* underneath — :func:`sweep_fusion` against the
complex-sorted :func:`repro.batch.fused.fused_fusion`, :func:`sweep_support`
against the one-sided ``_support_points`` sweep, the greedy
:func:`stretch_attack_step` against the fused driver's forged broadcasts,
and the full round body against the fused Monte-Carlo driver.

The kernels run everywhere: with numba installed they are JIT-compiled,
without it (or under ``REPRO_NUMBA_PUREPY=1``) the identity-``njit`` shim
runs the same source as plain Python, so the bit-equality assertions hold
on stdlib+numpy machines too.  Only the compiled-mode checks carry a skip
marker.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.fused import (
    _support_points,
    fused_fusion,
    fused_monte_carlo_rounds,
    prepare_rounds,
)
from repro.batch.kernels import numba_importable, purepy_forced
from repro.batch.kernels._compat import NUMBA_COMPILED
from repro.batch.kernels.attacker import stretch_attack_step
from repro.batch.kernels.rounds import numba_monte_carlo_rounds, numba_rounds_prepared
from repro.batch.kernels.sweep import sweep_fusion, sweep_support
from repro.batch.rounds import (
    ActiveStretchBatchAttacker,
    BatchRoundConfig,
    BatchTransientFaults,
    monte_carlo_rounds,
)
from repro.core.exceptions import FaultBoundError, FusionError
from repro.scheduling.schedule import (
    AscendingSchedule,
    DescendingSchedule,
    FixedSchedule,
    RandomSchedule,
)

requires_numba = pytest.mark.skipif(
    not numba_importable(), reason="numba is not installed"
)


def assert_results_equal(a, b):
    np.testing.assert_array_equal(a.orders, b.orders)
    np.testing.assert_array_equal(a.broadcast_lo, b.broadcast_lo)
    np.testing.assert_array_equal(a.broadcast_hi, b.broadcast_hi)
    np.testing.assert_array_equal(a.fusion.lo, b.fusion.lo)
    np.testing.assert_array_equal(a.fusion.hi, b.fusion.hi)
    np.testing.assert_array_equal(a.fusion.valid, b.fusion.valid)
    np.testing.assert_array_equal(a.flagged, b.flagged)
    np.testing.assert_array_equal(a.fault_mask, b.fault_mask)
    np.testing.assert_array_equal(a.attacked_mask, b.attacked_mask)


class TestCompilationMode:
    def test_compiled_flag_matches_environment(self):
        assert NUMBA_COMPILED == (numba_importable() and not purepy_forced())

    @requires_numba
    def test_jit_kernels_compile_unless_purepy_forced(self):
        if purepy_forced():
            pytest.skip("REPRO_NUMBA_PUREPY forces the pure-Python fallback")
        from repro.batch.kernels.sweep import _fusion_kernel

        sweep_fusion(np.zeros((4, 3)), np.ones((4, 3)), 1)
        assert _fusion_kernel.signatures, "expected an njit-compiled dispatcher"


class TestSweepFusionKernel:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), f=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_matches_fused_fusion_random_batches(self, seed, f):
        rng = np.random.default_rng(seed)
        lowers = rng.normal(size=(64, 6))
        uppers = lowers + rng.random((64, 6)) * 3
        a = fused_fusion(lowers, uppers, f)
        b = sweep_fusion(lowers, uppers, f)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)
        np.testing.assert_array_equal(a.valid, b.valid)

    def test_matches_fused_fusion_with_exact_ties(self):
        # The two-pointer merge must keep the opening-before-closing tie
        # rule the complex event sort realises: [0,1] and [1,2] intersect
        # at exactly the point 1 for f=0.
        lowers = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 0.0]])
        uppers = np.array([[1.0, 2.0], [1.0, 3.0], [2.0, 2.0]])
        a = fused_fusion(lowers, uppers, 0)
        b = sweep_fusion(lowers, uppers, 0)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)
        np.testing.assert_array_equal(a.valid, b.valid)
        assert b.valid[0] and b.lo[0] == b.hi[0] == 1.0

    def test_reports_empty_fusions_via_valid_mask(self):
        result = sweep_fusion(np.array([[0.0, 5.0]]), np.array([[1.0, 6.0]]), 0)
        assert not result.valid[0]
        assert np.isnan(result.lo[0]) and np.isnan(result.hi[0])

    def test_validates_like_fused_fusion(self):
        with pytest.raises(FaultBoundError):
            sweep_fusion(np.zeros((2, 3)), np.ones((2, 3)), 2)
        with pytest.raises(FusionError):
            sweep_fusion(np.array([[0.0, 2.0]]), np.array([[1.0, 1.0]]), 1)


class TestSweepSupportKernel:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        k=st.integers(min_value=1, max_value=7),
        right=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_support_points(self, seed, k, right):
        rng = np.random.default_rng(seed)
        lowers = rng.normal(size=(48, k))
        uppers = lowers + rng.random((48, k)) * 2
        required = rng.integers(-1, k + 2, size=48)
        a_point, a_valid = _support_points(lowers, uppers, required, right)
        b_point, b_valid = sweep_support(lowers, uppers, required, right)
        np.testing.assert_array_equal(a_valid, b_valid)
        # Invalid rows report an arbitrary event there and NaN here; the
        # contract (and the fused driver) only reads anchored rows.
        np.testing.assert_array_equal(a_point[a_valid], b_point[b_valid])
        assert np.isnan(b_point[~b_valid]).all()

    def test_scalar_required_and_exact_ties(self):
        # Two intervals meeting at exactly 1.0: the 2-coverage support on
        # either side is the single shared point.
        lowers = np.array([[0.0, 1.0]])
        uppers = np.array([[1.0, 2.0]])
        for right in (True, False):
            a_point, a_valid = _support_points(lowers, uppers, 2, right)
            b_point, b_valid = sweep_support(lowers, uppers, 2, right)
            np.testing.assert_array_equal(a_valid, b_valid)
            np.testing.assert_array_equal(a_point[a_valid], b_point[b_valid])
            assert b_valid[0] and b_point[0] == 1.0


class TestStretchAttackStepKernel:
    @given(
        lengths=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fa=st.integers(min_value=1, max_value=3),
        right=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_fused_forged_broadcasts(self, lengths, seed, fa, right):
        n = len(lengths)
        attacked = tuple(range(min(fa, n - 1)))
        config = BatchRoundConfig(
            schedule=RandomSchedule(),
            attacked_indices=attacked,
            attacker=ActiveStretchBatchAttacker(side=1 if right else -1),
        )
        reference = fused_monte_carlo_rounds(
            tuple(lengths), config, 48, rng=np.random.default_rng(seed)
        )
        # Re-prepare on an identical stream, then forge with the kernel
        # alone: the broadcasts must match the fused driver's bit-for-bit.
        from repro.batch.rounds import sample_correct_bounds

        rng = np.random.default_rng(seed)
        lowers, uppers = sample_correct_bounds(tuple(lengths), 0.0, 48, rng)
        prepared = prepare_rounds(lowers, uppers, config, rng)
        forged_lo, forged_hi = stretch_attack_step(
            prepared.sent_lo,
            prepared.sent_hi,
            prepared.orders,
            prepared.attacked_mask,
            prepared.correct_lo,
            prepared.correct_hi,
            prepared.delta_lo,
            prepared.delta_hi,
            prepared.f,
            right=right,
        )
        np.testing.assert_array_equal(forged_lo, reference.broadcast_lo)
        np.testing.assert_array_equal(forged_hi, reference.broadcast_hi)


class TestNumbaRoundsDriver:
    @pytest.mark.parametrize(
        "schedule",
        [AscendingSchedule(), DescendingSchedule(), RandomSchedule(), FixedSchedule((2, 0, 3, 1, 4))],
        ids=lambda s: s.name,
    )
    @pytest.mark.parametrize("attacked", [(), (0,), (0, 3), (1, 2, 4)])
    @pytest.mark.parametrize("side", [1, -1])
    def test_stretch_parity_with_batch_driver(self, schedule, attacked, side):
        config = BatchRoundConfig(
            schedule=schedule,
            attacked_indices=attacked,
            attacker=ActiveStretchBatchAttacker(side=side),
        )
        a = monte_carlo_rounds((2.0, 3.0, 3.0, 6.0, 8.0), config, 160, rng=np.random.default_rng(3))
        b = numba_monte_carlo_rounds(
            (2.0, 3.0, 3.0, 6.0, 8.0), config, 160, rng=np.random.default_rng(3)
        )
        assert_results_equal(a, b)

    def test_parity_with_transient_faults_and_empty_fusions(self):
        config = BatchRoundConfig(
            schedule=AscendingSchedule(),
            attacked_indices=(0,),
            f=2,
            faults=BatchTransientFaults(probability=0.35),
            attacker=ActiveStretchBatchAttacker(side=1),
        )
        a = fused_monte_carlo_rounds((1.0,) * 5, config, 256, rng=np.random.default_rng(7))
        b = numba_monte_carlo_rounds((1.0,) * 5, config, 256, rng=np.random.default_rng(7))
        assert_results_equal(a, b)
        assert not a.fusion.valid.all(), "expected some empty fusions under heavy faults"

    def test_parity_with_per_round_attacked_mask(self):
        rng = np.random.default_rng(4)
        mask = np.zeros((200, 5), dtype=bool)
        mask[np.arange(200), rng.integers(0, 5, 200)] = True
        mask[np.arange(200), rng.integers(0, 5, 200)] = True  # 1-2 attacked per row
        lowers = -np.random.default_rng(2).random((200, 5))
        uppers = lowers + 2.0
        config = BatchRoundConfig(
            schedule=RandomSchedule(),
            attacker=ActiveStretchBatchAttacker(side=1),
            attacked_mask=mask,
        )
        stream_a, stream_b = np.random.default_rng(9), np.random.default_rng(9)
        a = prepare_rounds(lowers, uppers, config, stream_a)
        b = prepare_rounds(lowers, uppers, config, stream_b)
        from repro.batch.fused import fused_rounds_prepared

        assert_results_equal(
            fused_rounds_prepared(a, config, stream_a),
            numba_rounds_prepared(b, config, stream_b),
        )
