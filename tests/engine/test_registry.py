"""Engine registry: resolution rules, env default, call-site routing."""

import numpy as np
import pytest

from repro.batch.comparison import compare_schedules_batch
from repro.batch.kernels import kernels_available
from repro.core import ExperimentError
from repro.core.exceptions import EngineUnavailableError
from repro.engine import (
    BatchEngine,
    Engine,
    ExpectationAttack,
    ScalarEngine,
    StretchAttack,
    TruthfulAttack,
    available_engines,
    default_engine_name,
    get_engine,
    register_engine,
    resolve_attack,
)
from repro.engine.base import ENGINE_ENV_VAR, _REGISTRY
from repro.scheduling import (
    AscendingSchedule,
    DescendingSchedule,
    ScheduleComparisonConfig,
    compare_schedules,
)

CONFIG = ScheduleComparisonConfig(lengths=(5.0, 11.0, 17.0), fa=1)


class TestRegistry:
    def test_builtin_engines_registered(self):
        # The optional "numba" engine registers only when numba is importable
        # (or REPRO_NUMBA_PUREPY forces the pure-Python kernels); the three
        # stdlib+numpy backends are always there.
        names = available_engines()
        assert {"batch", "fused", "scalar"} <= set(names)
        assert set(names) <= {"batch", "fused", "numba", "scalar"}
        assert ("numba" in names) == kernels_available()

    def test_list_engines_alias(self):
        from repro.engine import list_engines

        assert list_engines() == available_engines()

    def test_get_engine_by_name(self):
        from repro.engine import FusedEngine

        assert isinstance(get_engine("scalar"), ScalarEngine)
        assert isinstance(get_engine("batch"), BatchEngine)
        assert isinstance(get_engine("fused"), FusedEngine)

    def test_numba_engine_resolves_when_available(self):
        if not kernels_available():
            pytest.skip("numba kernels unavailable (no numba, no REPRO_NUMBA_PUREPY)")
        from repro.engine.numba_engine import NumbaEngine

        assert isinstance(get_engine("numba"), NumbaEngine)

    def test_get_engine_passthrough_instance(self):
        engine = BatchEngine()
        assert get_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError, match="unknown engine"):
            get_engine("warp")

    def test_unknown_engine_lists_available_with_did_you_mean(self):
        # A near-miss typo gets the available list plus a suggestion.
        with pytest.raises(ExperimentError, match="did you mean 'fused'") as excinfo:
            get_engine("fussed")
        assert "available engines: " + ", ".join(available_engines()) in str(excinfo.value)

    def test_unavailable_optional_engine_gets_install_hint(self, monkeypatch):
        # With numba uninstalled, --engine numba must diagnose the missing
        # optional dependency (EngineUnavailableError), never an ImportError
        # traceback and never a did-you-mean typo hint.
        monkeypatch.delitem(_REGISTRY, "numba", raising=False)
        with pytest.raises(EngineUnavailableError, match="pip install numba"):
            get_engine("numba")
        monkeypatch.setenv(ENGINE_ENV_VAR, "numba")
        with pytest.raises(EngineUnavailableError, match=ENGINE_ENV_VAR):
            default_engine_name()

    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert default_engine_name() == "scalar"
        assert isinstance(get_engine(None), ScalarEngine)

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batch")
        assert default_engine_name() == "batch"
        assert isinstance(get_engine(), BatchEngine)

    def test_env_with_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ExperimentError, match=ENGINE_ENV_VAR):
            default_engine_name()

    def test_reregistration_guard(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_engine("scalar", ScalarEngine)
        with pytest.raises(ExperimentError, match="non-empty"):
            register_engine("", ScalarEngine)

    def test_third_party_engine_pluggable(self):
        class WarpEngine(BatchEngine):
            name = "warp"

        register_engine("warp", WarpEngine)
        try:
            assert "warp" in available_engines()
            assert isinstance(get_engine("warp"), WarpEngine)
            assert isinstance(get_engine("warp"), Engine)
        finally:
            _REGISTRY.pop("warp", None)


class TestAttackSpecs:
    def test_string_spellings(self):
        assert resolve_attack("truthful") == TruthfulAttack()
        assert resolve_attack("stretch") == StretchAttack(side=1)
        assert resolve_attack("stretch-left") == StretchAttack(side=-1)
        assert resolve_attack("expectation") == ExpectationAttack()
        assert resolve_attack("expectation-conservative") == ExpectationAttack(conservative=True)

    def test_instances_pass_through(self):
        spec = StretchAttack(side=-1)
        assert resolve_attack(spec) is spec
        expectation = ExpectationAttack(grid_positions=5)
        assert resolve_attack(expectation) is expectation

    def test_invalid_spec_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_attack("nuke")
        with pytest.raises(ExperimentError):
            StretchAttack(side=2)
        with pytest.raises(ExperimentError):
            ExpectationAttack(grid_positions=0)


class TestCompareSchedulesRouting:
    def test_engine_batch_matches_legacy_batch_comparison(self):
        # The engine route must reproduce compare_schedules_batch exactly
        # (same sampling, same attacker, same shared-RNG consumption).
        via_engine = compare_schedules(
            CONFIG,
            [AscendingSchedule(), DescendingSchedule()],
            engine="batch",
            samples=3_000,
            rng=np.random.default_rng(42),
        )
        legacy = compare_schedules_batch(
            CONFIG,
            [AscendingSchedule(), DescendingSchedule()],
            samples=3_000,
            rng=np.random.default_rng(42),
        )
        assert via_engine.rows == legacy.rows

    def test_engine_scalar_route(self):
        comparison = compare_schedules(
            CONFIG, [AscendingSchedule()], engine="scalar", samples=200
        )
        row = comparison.row("ascending")
        assert row.combinations == 200
        assert row.expected_width > 0

    def test_engine_and_method_conflict_rejected(self):
        with pytest.raises(ExperimentError, match="not both"):
            compare_schedules(
                CONFIG, [AscendingSchedule()], method="monte_carlo", engine="batch"
            )

    def test_policy_factory_rejected_with_engine(self):
        with pytest.raises(ExperimentError, match="policy_factory"):
            compare_schedules(
                CONFIG, [AscendingSchedule()], policy_factory=object, engine="batch"
            )

    def test_attack_spec_rejected_with_scalar_method(self):
        with pytest.raises(ExperimentError, match="policy_factory"):
            compare_schedules(
                CONFIG, [AscendingSchedule()], method="exhaustive", attack="expectation"
            )

    def test_env_routes_bare_compare_schedules(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batch")
        comparison = compare_schedules(CONFIG, [AscendingSchedule()], samples=500)
        # The batch engine ran a Monte-Carlo sweep (combinations == samples),
        # not the exhaustive enumeration (combinations == positions**n).
        assert comparison.row("ascending").combinations == 500

    def test_explicit_method_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batch")
        comparison = compare_schedules(CONFIG, [AscendingSchedule()], method="exhaustive")
        assert comparison.row("ascending").combinations == 27

    def test_env_scalar_is_a_noop_for_bare_compare_schedules(self, monkeypatch):
        # REPRO_ENGINE=scalar names the default backend, so a bare call must
        # keep the paper's exhaustive estimator (and keep honouring
        # policy_factory) exactly as if the variable were unset.
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        unset = compare_schedules(CONFIG, [AscendingSchedule()])
        monkeypatch.setenv(ENGINE_ENV_VAR, "scalar")
        with_env = compare_schedules(CONFIG, [AscendingSchedule()])
        assert with_env.rows == unset.rows
        assert with_env.row("ascending").combinations == 27


class TestEngineErrors:
    def test_scalar_rejects_batch_options(self):
        with pytest.raises(ExperimentError, match="batch engine"):
            ScalarEngine().run_case_study(n_replicas=8)

    def test_batch_rejects_policy_factory(self):
        with pytest.raises(ExperimentError, match="attacker_factory"):
            BatchEngine().run_case_study(policy_factory=object)

    def test_batch_rejects_unknown_options(self):
        with pytest.raises(ExperimentError, match="does not understand"):
            BatchEngine().run_case_study(warp_factor=9)

    def test_nonpositive_samples_rejected(self):
        for engine in (ScalarEngine(), BatchEngine()):
            with pytest.raises(ExperimentError):
                engine.run_rounds(CONFIG, AscendingSchedule(), samples=0)
