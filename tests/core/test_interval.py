"""Unit tests for the Interval and IntervalSet primitives."""

import math

import pytest

from repro.core import (
    EmptyIntersectionError,
    Interval,
    IntervalError,
    IntervalSet,
    convex_hull,
    intersect_all,
)


class TestIntervalConstruction:
    def test_basic_bounds(self):
        s = Interval(1.0, 3.0)
        assert s.lo == 1.0
        assert s.hi == 3.0

    def test_degenerate_interval_allowed(self):
        s = Interval(2.0, 2.0)
        assert s.width == 0.0

    def test_reversed_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval(3.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(IntervalError):
            Interval(math.nan, 1.0)

    def test_infinite_rejected(self):
        with pytest.raises(IntervalError):
            Interval(0.0, math.inf)

    def test_from_center(self):
        s = Interval.from_center(10.0, 2.0)
        assert s.lo == pytest.approx(9.0)
        assert s.hi == pytest.approx(11.0)

    def test_from_center_negative_width_rejected(self):
        with pytest.raises(IntervalError):
            Interval.from_center(0.0, -1.0)

    def test_point_constructor(self):
        s = Interval.point(4.2)
        assert s.lo == s.hi == 4.2

    def test_ordering_is_lexicographic(self):
        assert Interval(0, 1) < Interval(0, 2) < Interval(1, 1)

    def test_equality_and_hash(self):
        assert Interval(0, 1) == Interval(0.0, 1.0)
        assert hash(Interval(0, 1)) == hash(Interval(0.0, 1.0))


class TestIntervalGeometry:
    def test_width_and_center(self):
        s = Interval(2.0, 6.0)
        assert s.width == 4.0
        assert s.center == 4.0

    def test_contains_value(self):
        s = Interval(0.0, 1.0)
        assert s.contains(0.0)
        assert s.contains(1.0)
        assert s.contains(0.5)
        assert not s.contains(1.0001)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))

    def test_dunder_contains(self):
        assert 0.5 in Interval(0, 1)
        assert Interval(0.2, 0.8) in Interval(0, 1)
        assert "x" not in Interval(0, 1)

    def test_intersects_touching(self):
        assert Interval(0, 1).intersects(Interval(1, 2))
        assert Interval(1, 2).intersects(Interval(0, 1))

    def test_intersects_disjoint(self):
        assert not Interval(0, 1).intersects(Interval(1.5, 2))

    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None
        assert Interval(0, 1).intersection(Interval(1, 2)) == Interval(1, 1)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)

    def test_shift(self):
        assert Interval(0, 1).shift(2.5) == Interval(2.5, 3.5)

    def test_expand(self):
        assert Interval(1, 2).expand(0.5) == Interval(0.5, 2.5)

    def test_expand_negative_rejected(self):
        with pytest.raises(IntervalError):
            Interval(1, 2).expand(-0.1)

    def test_clamp(self):
        s = Interval(0, 1)
        assert s.clamp(-1) == 0
        assert s.clamp(0.5) == 0.5
        assert s.clamp(2) == 1

    def test_distance_to(self):
        s = Interval(0, 1)
        assert s.distance_to(0.5) == 0.0
        assert s.distance_to(-1.0) == 1.0
        assert s.distance_to(3.0) == 2.0

    def test_almost_equal(self):
        assert Interval(0, 1).almost_equal(Interval(1e-12, 1 + 1e-12))
        assert not Interval(0, 1).almost_equal(Interval(0.1, 1))

    def test_str(self):
        assert str(Interval(0.5, 2.0)) == "[0.5, 2]"


class TestModuleFunctions:
    def test_convex_hull(self):
        hull = convex_hull([Interval(0, 1), Interval(5, 6), Interval(2, 3)])
        assert hull == Interval(0, 6)

    def test_convex_hull_empty_rejected(self):
        with pytest.raises(IntervalError):
            convex_hull([])

    def test_intersect_all(self):
        core = intersect_all([Interval(0, 5), Interval(1, 6), Interval(2, 7)])
        assert core == Interval(2, 5)

    def test_intersect_all_single_point(self):
        assert intersect_all([Interval(0, 1), Interval(1, 2)]) == Interval(1, 1)

    def test_intersect_all_empty_intersection(self):
        with pytest.raises(EmptyIntersectionError):
            intersect_all([Interval(0, 1), Interval(2, 3)])

    def test_intersect_all_empty_input(self):
        with pytest.raises(IntervalError):
            intersect_all([])


class TestIntervalSet:
    def test_sequence_protocol(self):
        items = [Interval(0, 1), Interval(2, 3)]
        s = IntervalSet(items)
        assert len(s) == 2
        assert list(s) == items
        assert s[0] == items[0]
        assert isinstance(s[0:1], IntervalSet)

    def test_rejects_non_intervals(self):
        with pytest.raises(IntervalError):
            IntervalSet([Interval(0, 1), (2, 3)])  # type: ignore[list-item]

    def test_add_and_extend_are_pure(self):
        s = IntervalSet([Interval(0, 1)])
        s2 = s.add(Interval(2, 3))
        s3 = s.extend([Interval(4, 5), Interval(6, 7)])
        assert len(s) == 1
        assert len(s2) == 2
        assert len(s3) == 3

    def test_remove_at(self):
        s = IntervalSet([Interval(0, 1), Interval(2, 3), Interval(4, 5)])
        s2 = s.remove_at(1)
        assert list(s2) == [Interval(0, 1), Interval(4, 5)]

    def test_widths(self):
        s = IntervalSet([Interval(0, 1), Interval(0, 3)])
        assert s.widths == (1.0, 3.0)

    def test_sorted_by_width(self):
        s = IntervalSet([Interval(0, 3), Interval(0, 1), Interval(0, 2)])
        assert s.sorted_by_width().widths == (1.0, 2.0, 3.0)
        assert s.sorted_by_width(descending=True).widths == (3.0, 2.0, 1.0)

    def test_hull_and_intersection(self):
        s = IntervalSet([Interval(0, 4), Interval(2, 6)])
        assert s.hull() == Interval(0, 6)
        assert s.intersection() == Interval(2, 4)

    def test_coverage_and_containing(self):
        s = IntervalSet([Interval(0, 2), Interval(1, 3), Interval(2, 4)])
        assert s.coverage(0.5) == 1
        assert s.coverage(1.5) == 2
        assert s.coverage(2.0) == 3
        assert len(s.containing(2.0)) == 3

    def test_count_containing_true_value(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 6)])
        assert s.count_containing_true_value(1.0) == 1

    def test_equality_and_hash(self):
        a = IntervalSet([Interval(0, 1)])
        b = IntervalSet([Interval(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_mentions_intervals(self):
        assert "[0, 1]" in repr(IntervalSet([Interval(0, 1)]))
