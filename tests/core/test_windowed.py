"""Unit tests for windowed detection and the fault-tolerant pipeline."""

import pytest

from repro.core import (
    FusionError,
    Interval,
    WindowedDetector,
    WindowedFusionPipeline,
)


class TestWindowedDetector:
    def test_parameter_validation(self):
        with pytest.raises(FusionError):
            WindowedDetector(0, 5, 1)
        with pytest.raises(FusionError):
            WindowedDetector(3, 0, 0)
        with pytest.raises(FusionError):
            WindowedDetector(3, 5, 6)

    def test_flag_length_validated(self):
        detector = WindowedDetector(3, 5, 1)
        with pytest.raises(FusionError):
            detector.update([True, False])

    def test_single_flag_within_budget_not_discarded(self):
        detector = WindowedDetector(2, window=5, max_flags=1)
        assert detector.update([True, False]) == frozenset()
        assert detector.flag_count(0) == 1

    def test_exceeding_budget_discards(self):
        detector = WindowedDetector(2, window=5, max_flags=1)
        detector.update([True, False])
        discarded = detector.update([True, False])
        assert discarded == frozenset({0})

    def test_flags_age_out_of_window(self):
        detector = WindowedDetector(1, window=3, max_flags=1)
        detector.update([True])
        detector.update([False])
        detector.update([False])
        # The original flag has aged out, so a new one stays within budget.
        assert detector.update([True]) == frozenset()

    def test_discard_is_permanent(self):
        detector = WindowedDetector(1, window=2, max_flags=0)
        assert detector.update([True]) == frozenset({0})
        # Later clean rounds do not rehabilitate the sensor.
        assert detector.update([False]) == frozenset({0})

    def test_zero_budget_discards_immediately(self):
        detector = WindowedDetector(3, window=4, max_flags=0)
        assert detector.update([False, True, False]) == frozenset({1})

    def test_reset(self):
        detector = WindowedDetector(1, window=2, max_flags=0)
        detector.update([True])
        detector.reset()
        assert detector.discarded == frozenset()
        assert detector.flag_count(0) == 0


class TestWindowedFusionPipeline:
    def _round(self, spoof: bool) -> list[Interval]:
        honest = [Interval(9.9, 10.1), Interval(9.7, 10.3), Interval(9.5, 10.5)]
        attacker = Interval(20.0, 21.0) if spoof else Interval(9.8, 10.2)
        return honest + [attacker]

    def test_input_length_validated(self):
        pipeline = WindowedFusionPipeline(4, window=3, max_flags=1)
        with pytest.raises(FusionError):
            pipeline.process_round([Interval(0, 1)])

    def test_clean_rounds_do_not_discard(self):
        pipeline = WindowedFusionPipeline(4, window=3, max_flags=1)
        for _ in range(5):
            outcome = pipeline.process_round(self._round(spoof=False))
            assert outcome.discarded_indices == ()
            assert outcome.fusion.contains(10.0)

    def test_persistent_spoofer_gets_discarded(self):
        pipeline = WindowedFusionPipeline(4, window=4, max_flags=1)
        outcomes = [pipeline.process_round(self._round(spoof=True)) for _ in range(3)]
        assert outcomes[-1].is_discarded(3)
        # Honest sensors are never discarded.
        assert all(not outcomes[-1].is_discarded(i) for i in range(3))

    def test_discarded_sensor_excluded_from_fusion(self):
        pipeline = WindowedFusionPipeline(4, window=4, max_flags=0)
        first = pipeline.process_round(self._round(spoof=True))
        assert first.is_discarded(3)
        second = pipeline.process_round(self._round(spoof=True))
        assert second.used_indices == (0, 1, 2)
        assert second.flagged_indices == ()

    def test_transient_fault_survives_window(self):
        pipeline = WindowedFusionPipeline(4, window=5, max_flags=2)
        pipeline.process_round(self._round(spoof=True))   # one glitch
        for _ in range(4):
            outcome = pipeline.process_round(self._round(spoof=False))
        assert outcome.discarded_indices == ()

    def test_too_few_remaining_sensors_is_an_error(self):
        pipeline = WindowedFusionPipeline(3, window=2, max_flags=0, min_sensors=3)
        honest = [Interval(9.9, 10.1), Interval(9.8, 10.2)]
        first = pipeline.process_round(honest + [Interval(30.0, 31.0)])
        assert first.is_discarded(2)
        # Only two sensors remain but the pipeline requires three.
        with pytest.raises(FusionError):
            pipeline.process_round(honest + [Interval(30.0, 31.0)])

    def test_fusion_widens_f_when_more_faults_than_assumed(self):
        # Two of four sensors glitch in the same round: the configured bound
        # (f = 1) leaves no point covered by three intervals, so the pipeline
        # widens the bound for that round instead of failing.
        pipeline = WindowedFusionPipeline(4, window=5, max_flags=2)
        outcome = pipeline.process_round(
            [Interval(9.9, 10.1), Interval(9.8, 10.2), Interval(20.0, 20.4), Interval(30.0, 30.4)]
        )
        assert outcome.effective_f == 2
        assert outcome.fusion.contains(10.0)
        assert outcome.flagged_indices == (2, 3)

    def test_effective_f_adapts_to_remaining_sensors(self):
        pipeline = WindowedFusionPipeline(5, window=2, max_flags=0, f=2)
        honest = [Interval(9.9, 10.1), Interval(9.8, 10.2), Interval(9.7, 10.3), Interval(9.6, 10.4)]
        spoof = Interval(30.0, 31.0)
        first = pipeline.process_round(honest + [spoof])
        assert first.is_discarded(4)
        # With only 4 sensors left the configured f=2 violates f < ceil(n/2);
        # the pipeline clamps it to 1 and keeps fusing.
        second = pipeline.process_round(honest + [spoof])
        assert second.fusion.contains(10.0)
