"""Unit tests for the worst-case placement search (Theorems 3 and 4)."""

import pytest

from repro.core import FusionError
from repro.core.worst_case import (
    attacked_placements,
    correct_placements,
    placement_grid,
    worst_case_no_attack,
    worst_case_over_attacked_sets,
    worst_case_with_attack,
)


class TestPlacementGrids:
    def test_grid_includes_endpoints(self):
        grid = placement_grid(0.0, 1.0, 0.3)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0

    def test_grid_resolution_positive(self):
        with pytest.raises(FusionError):
            placement_grid(0.0, 1.0, 0.0)

    def test_grid_empty_range_rejected(self):
        with pytest.raises(FusionError):
            placement_grid(1.0, 0.0, 0.1)

    def test_correct_placements_contain_true_value(self):
        for interval in correct_placements(4.0, true_value=2.0, resolution=1.0):
            assert interval.contains(2.0)
            assert interval.width == pytest.approx(4.0)

    def test_attacked_placements_have_right_width(self):
        for interval in attacked_placements(3.0, 0.0, max_correct_width=5.0, resolution=1.0):
            assert interval.width == pytest.approx(3.0)


class TestWorstCaseSearch:
    def test_no_attack_search_returns_correct_intervals(self):
        result = worst_case_no_attack([2.0, 2.0, 2.0], f=1, resolution=1.0)
        assert result.attacked_indices == ()
        assert all(s.contains(0.0) for s in result.intervals)
        assert result.fusion.width == pytest.approx(result.width)

    def test_worst_case_no_attack_three_equal_sensors(self):
        # Three width-2 sensors, f = 1: the worst case is two sensors touching
        # at the true value, giving a fusion interval of width 2.
        result = worst_case_no_attack([2.0, 2.0, 2.0], f=1, resolution=0.5)
        assert result.width == pytest.approx(2.0)

    def test_attacked_index_out_of_range(self):
        with pytest.raises(FusionError):
            worst_case_with_attack([1.0, 1.0, 1.0], [5], f=1)

    def test_all_attacked_rejected(self):
        with pytest.raises(FusionError):
            worst_case_with_attack([1.0, 1.0], [0, 1], f=0)

    def test_theorem3_attacking_largest_does_not_increase_worst_case(self):
        widths = [2.0, 4.0, 8.0]
        baseline = worst_case_no_attack(widths, f=1, resolution=1.0)
        attacked_largest = worst_case_with_attack(widths, [2], f=1, resolution=1.0)
        assert attacked_largest.width == pytest.approx(baseline.width, abs=1e-9)

    def test_theorem4_attacking_smallest_achieves_global_worst_case(self):
        widths = [2.0, 4.0, 8.0]
        per_set = worst_case_over_attacked_sets(widths, fa=1, f=1, resolution=1.0)
        global_worst = max(result.width for result in per_set.values())
        smallest_attack = per_set[(0,)]
        assert smallest_attack.width == pytest.approx(global_worst, abs=1e-9)

    def test_attack_never_below_no_attack(self):
        # The attacker can always forward the correct readings, so the worst
        # case with an attacked set is at least the no-attack worst case.
        widths = [2.0, 3.0, 6.0]
        baseline = worst_case_no_attack(widths, f=1, resolution=1.0)
        for attacked in ([0], [1], [2]):
            result = worst_case_with_attack(widths, attacked, f=1, resolution=1.0)
            assert result.width >= baseline.width - 1e-9

    def test_worst_case_over_attacked_sets_keys(self):
        per_set = worst_case_over_attacked_sets([1.0, 2.0, 3.0], fa=1, f=1, resolution=1.0)
        assert set(per_set.keys()) == {(0,), (1,), (2,)}

    def test_invalid_fa_rejected(self):
        with pytest.raises(FusionError):
            worst_case_over_attacked_sets([1.0, 2.0, 3.0], fa=2, f=1)

    def test_stealth_constraint_respected(self):
        result = worst_case_with_attack([2.0, 4.0, 8.0], [0], f=1, resolution=1.0)
        attacked_interval = result.intervals[0]
        assert attacked_interval.intersects(result.fusion)
