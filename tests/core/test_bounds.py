"""Unit tests for the theoretical bounds (Marzullo's regimes, Theorem 2)."""

import pytest

from repro.core import (
    FusionError,
    Interval,
    fuse,
    marzullo_regime,
    satisfies_marzullo_n2_bound,
    satisfies_marzullo_n3_bound,
    satisfies_theorem2,
    theorem2_bound,
    two_largest_widths,
)


class TestRegimes:
    @pytest.mark.parametrize(
        "n,f,expected",
        [
            (3, 0, "n3"),
            (6, 1, "n3"),
            (3, 1, "n2"),
            (5, 2, "n2"),
            (4, 2, "unbounded"),
            (5, 3, "unbounded"),
            (2, 1, "unbounded"),
        ],
    )
    def test_classification(self, n, f, expected):
        assert marzullo_regime(n, f) == expected

    def test_invalid_inputs(self):
        with pytest.raises(FusionError):
            marzullo_regime(0, 0)
        with pytest.raises(FusionError):
            marzullo_regime(3, -1)


class TestTheorem2:
    def test_two_largest_widths(self):
        intervals = [Interval(0, 1), Interval(0, 5), Interval(0, 3)]
        assert two_largest_widths(intervals) == (5.0, 3.0)

    def test_single_interval_width_doubled(self):
        assert two_largest_widths([Interval(0, 2)]) == (2.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            two_largest_widths([])

    def test_bound_value(self):
        intervals = [Interval(0, 1), Interval(0, 5), Interval(0, 3)]
        assert theorem2_bound(intervals) == 8.0

    def test_satisfies_theorem2_tight_case(self):
        # Two correct intervals touching at exactly the true value plus an
        # attacked interval pushing to one side: the fusion width approaches
        # but never exceeds the sum of the two largest correct widths.
        correct = [Interval(-4, 0), Interval(0, 4)]
        attacked = Interval(3, 7)
        fusion = fuse(correct + [attacked], 1)
        assert satisfies_theorem2(fusion, correct)

    def test_violation_detected(self):
        assert not satisfies_theorem2(Interval(0, 100), [Interval(0, 1), Interval(0, 2)])


class TestMarzulloWidthBounds:
    def test_n3_bound(self):
        correct = [Interval(0, 2), Interval(1, 3), Interval(1.5, 3.5), Interval(1.6, 4.0)]
        fusion = fuse(correct, 1)  # f=1 < ceil(4/3)=2
        assert satisfies_marzullo_n3_bound(fusion, correct)

    def test_n3_bound_empty_rejected(self):
        with pytest.raises(FusionError):
            satisfies_marzullo_n3_bound(Interval(0, 1), [])

    def test_n2_bound(self):
        intervals = [Interval(0, 2), Interval(1, 3), Interval(10, 12)]
        fusion = fuse(intervals, 1)
        assert satisfies_marzullo_n2_bound(fusion, intervals)

    def test_n2_bound_empty_rejected(self):
        with pytest.raises(FusionError):
            satisfies_marzullo_n2_bound(Interval(0, 1), [])

    def test_n2_bound_violation_detected(self):
        assert not satisfies_marzullo_n2_bound(Interval(0, 10), [Interval(0, 1)])
