"""Unit tests for Marzullo's fusion algorithm."""

import pytest

from repro.core import (
    EmptyFusionError,
    FaultBoundError,
    FusionError,
    Interval,
    coverage_profile,
    fuse,
    fuse_or_none,
    kth_largest_upper_bound,
    kth_smallest_lower_bound,
    max_coverage,
    max_safe_fault_bound,
    validate_fault_bound,
)


def figure1_like_intervals():
    """Five intervals with a common point, echoing Figure 1's structure."""
    return [
        Interval(0.0, 4.0),
        Interval(1.5, 5.5),
        Interval(3.0, 6.0),
        Interval(3.5, 9.0),
        Interval(3.8, 10.0),
    ]


class TestValidateFaultBound:
    def test_accepts_valid(self):
        validate_fault_bound(5, 0)
        validate_fault_bound(5, 2)
        validate_fault_bound(4, 1)

    def test_rejects_f_at_or_above_half(self):
        with pytest.raises(FaultBoundError):
            validate_fault_bound(5, 3)
        with pytest.raises(FaultBoundError):
            validate_fault_bound(4, 2)

    def test_rejects_negative_f(self):
        with pytest.raises(FaultBoundError):
            validate_fault_bound(3, -1)

    def test_rejects_zero_sensors(self):
        with pytest.raises(FaultBoundError):
            validate_fault_bound(0, 0)

    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2), (7, 3)])
    def test_max_safe_fault_bound(self, n, expected):
        assert max_safe_fault_bound(n) == expected

    def test_max_safe_fault_bound_invalid_n(self):
        with pytest.raises(FaultBoundError):
            max_safe_fault_bound(0)


class TestFuse:
    def test_single_interval_f0(self):
        assert fuse([Interval(1, 2)], 0) == Interval(1, 2)

    def test_f0_is_intersection(self):
        intervals = figure1_like_intervals()
        assert fuse(intervals, 0) == Interval(3.8, 4.0)

    def test_f_grows_fusion_interval(self):
        intervals = figure1_like_intervals()
        widths = [fuse(intervals, f).width for f in range(3)]
        assert widths[0] <= widths[1] <= widths[2]

    def test_f1_known_value(self):
        intervals = figure1_like_intervals()
        assert fuse(intervals, 1) == Interval(3.5, 5.5)

    def test_f2_known_value(self):
        intervals = figure1_like_intervals()
        assert fuse(intervals, 2) == Interval(3.0, 6.0)

    def test_two_disjoint_intervals_f0_empty(self):
        with pytest.raises(EmptyFusionError):
            fuse([Interval(0, 1), Interval(2, 3), Interval(0.5, 2.5)], 0)

    def test_fault_bound_validated(self):
        with pytest.raises(FaultBoundError):
            fuse([Interval(0, 1), Interval(0, 1)], 1)

    def test_empty_input_rejected(self):
        with pytest.raises(FusionError):
            fuse([], 0)

    def test_touching_intervals_count_as_overlap(self):
        # Closed-interval semantics: [0,1] and [1,2] share the point 1.
        assert fuse([Interval(0, 1), Interval(1, 2), Interval(0.5, 1.5)], 1) == Interval(0.5, 1.5)

    def test_duplicate_intervals(self):
        s = Interval(2, 4)
        assert fuse([s, s, s], 1) == s

    def test_order_invariance(self):
        intervals = figure1_like_intervals()
        reversed_result = fuse(list(reversed(intervals)), 2)
        assert reversed_result == fuse(intervals, 2)

    def test_translation_equivariance(self):
        intervals = figure1_like_intervals()
        shifted = [s.shift(7.5) for s in intervals]
        assert fuse(shifted, 1) == fuse(intervals, 1).shift(7.5)

    def test_fusion_for_n_minus_1_faults_is_hull(self):
        # For f = n - 1 (only reachable through fuse_or_none because the
        # safety requirement forbids it) every point of any interval counts.
        intervals = [Interval(0, 1), Interval(5, 6)]
        assert fuse_or_none(intervals, 1) == Interval(0, 6)


class TestFuseOrNone:
    def test_returns_none_on_insufficient_coverage(self):
        assert fuse_or_none([Interval(0, 1), Interval(2, 3)], 0) is None

    def test_negative_f_rejected(self):
        with pytest.raises(FaultBoundError):
            fuse_or_none([Interval(0, 1)], -1)

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            fuse_or_none([], 0)

    def test_f_at_least_n_gives_hull(self):
        assert fuse_or_none([Interval(0, 1), Interval(4, 5)], 2) == Interval(0, 5)

    def test_agrees_with_fuse_when_valid(self):
        intervals = figure1_like_intervals()
        assert fuse_or_none(intervals, 2) == fuse(intervals, 2)


class TestCoverageProfile:
    def test_empty(self):
        assert coverage_profile([]) == []

    def test_single_interval(self):
        profile = coverage_profile([Interval(0, 2)])
        assert max(seg.coverage for seg in profile) == 1
        assert profile[0].lo == 0.0
        assert profile[-1].hi == 2.0

    def test_max_coverage_overlapping(self):
        intervals = [Interval(0, 3), Interval(1, 4), Interval(2, 5)]
        assert max_coverage(intervals) == 3

    def test_max_coverage_disjoint(self):
        assert max_coverage([Interval(0, 1), Interval(2, 3)]) == 1

    def test_max_coverage_touching_point(self):
        # The single shared point 1 is covered by both closed intervals.
        assert max_coverage([Interval(0, 1), Interval(1, 2)]) == 2

    def test_profile_covers_hull(self):
        intervals = [Interval(0, 1), Interval(3, 4)]
        profile = coverage_profile(intervals)
        assert profile[0].lo == 0.0
        assert profile[-1].hi == 4.0
        # The gap between the clusters is reported with zero coverage.
        assert any(seg.coverage == 0 for seg in profile)

    def test_profile_consistent_with_pointwise_count(self):
        intervals = [Interval(0, 2), Interval(1, 3), Interval(1.5, 1.8)]
        for value in (0.5, 1.2, 1.6, 2.5, 3.0):
            expected = sum(1 for s in intervals if s.contains(value))
            covering = [
                seg.coverage for seg in coverage_profile(intervals) if seg.lo <= value <= seg.hi
            ]
            assert max(covering) == expected


class TestOrderStatistics:
    def test_kth_smallest_lower_bound(self):
        intervals = [Interval(3, 4), Interval(1, 2), Interval(2, 5)]
        assert kth_smallest_lower_bound(intervals, 1) == 1
        assert kth_smallest_lower_bound(intervals, 2) == 2
        assert kth_smallest_lower_bound(intervals, 3) == 3

    def test_kth_largest_upper_bound(self):
        intervals = [Interval(3, 4), Interval(1, 2), Interval(2, 5)]
        assert kth_largest_upper_bound(intervals, 1) == 5
        assert kth_largest_upper_bound(intervals, 2) == 4
        assert kth_largest_upper_bound(intervals, 3) == 2

    def test_out_of_range_k_rejected(self):
        with pytest.raises(FusionError):
            kth_smallest_lower_bound([Interval(0, 1)], 2)
        with pytest.raises(FusionError):
            kth_largest_upper_bound([Interval(0, 1)], 0)
