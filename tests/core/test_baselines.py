"""Unit tests for the baseline fusion schemes (mean, median, Brooks–Iyengar)."""

import pytest

from repro.core import (
    FusionError,
    Interval,
    brooks_iyengar,
    fuse,
    mean_fusion,
    median_fusion,
)


class TestMeanFusion:
    def test_average_of_bounds(self):
        result = mean_fusion([Interval(0, 2), Interval(2, 4)])
        assert result == Interval(1, 3)

    def test_single_interval(self):
        assert mean_fusion([Interval(1, 2)]) == Interval(1, 2)

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            mean_fusion([])

    def test_outlier_drags_the_estimate(self):
        honest = [Interval(9.9, 10.1), Interval(9.8, 10.2), Interval(9.5, 10.5)]
        spoofed = honest + [Interval(19.5, 20.5)]
        assert abs(mean_fusion(spoofed).center - 10.0) > 2.0


class TestMedianFusion:
    def test_median_of_bounds(self):
        result = median_fusion([Interval(0, 2), Interval(1, 3), Interval(2, 4)])
        assert result == Interval(1, 3)

    def test_empty_rejected(self):
        with pytest.raises(FusionError):
            median_fusion([])

    def test_robust_to_single_outlier(self):
        honest = [Interval(9.9, 10.1), Interval(9.8, 10.2), Interval(9.5, 10.5)]
        spoofed = honest + [Interval(19.5, 20.5)]
        assert abs(median_fusion(spoofed).center - 10.0) < 0.5


class TestBrooksIyengar:
    def test_interval_matches_marzullo(self):
        intervals = [Interval(0, 4), Interval(1.5, 5.5), Interval(3, 6), Interval(3.5, 9), Interval(3.8, 10)]
        for f in (0, 1, 2):
            result = brooks_iyengar(intervals, f)
            assert result.interval == fuse(intervals, f)

    def test_estimate_inside_fused_interval(self):
        intervals = [Interval(9.9, 10.1), Interval(9.7, 10.3), Interval(9.5, 10.5), Interval(9.0, 11.0)]
        result = brooks_iyengar(intervals, 1)
        assert result.interval.contains(result.estimate)

    def test_estimate_weighted_towards_high_coverage_regions(self):
        # Three tight sensors around 10 and one offset sensor: the estimate
        # must stay close to the tight cluster.
        intervals = [Interval(9.9, 10.1), Interval(9.95, 10.15), Interval(9.85, 10.05), Interval(10.0, 12.0)]
        result = brooks_iyengar(intervals, 1)
        assert abs(result.estimate - 10.0) < 0.3

    def test_fault_bound_validated(self):
        with pytest.raises(FusionError):
            brooks_iyengar([Interval(0, 1), Interval(0, 1)], 1)

    def test_insufficient_coverage_rejected(self):
        with pytest.raises(FusionError):
            brooks_iyengar([Interval(0, 1), Interval(2, 3), Interval(4, 5)], 1)

    def test_regions_have_enough_coverage(self):
        intervals = [Interval(0, 3), Interval(1, 4), Interval(2, 5)]
        result = brooks_iyengar(intervals, 1)
        assert all(coverage >= 2 for _region, coverage in result.regions)

    def test_resilience_to_stealthy_outlier_vs_mean(self):
        honest = [Interval(9.9, 10.1), Interval(9.8, 10.2), Interval(9.5, 10.5)]
        spoofed = honest + [Interval(10.4, 11.4)]
        bi_error = abs(brooks_iyengar(spoofed, 1).estimate - 10.0)
        mean_error = abs(mean_fusion(spoofed).center - 10.0)
        assert bi_error < mean_error
