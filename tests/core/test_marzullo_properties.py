"""Property-based tests for the fusion core (hypothesis).

These tests encode the paper's and Marzullo's formal guarantees as universally
quantified properties over randomly generated interval configurations:

* the fusion interval contains the true value whenever at most ``f`` intervals
  are actually faulty;
* the fusion interval is monotone in ``f``;
* the fusion interval never exceeds the hull of the correct intervals when
  ``f < ceil(n/2)``;
* the ``f < ceil(n/3)`` and ``f < ceil(n/2)`` width bounds;
* Theorem 2's two-largest-correct-widths bound.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Interval,
    convex_hull,
    fuse,
    fuse_or_none,
    max_safe_fault_bound,
    satisfies_marzullo_n2_bound,
    satisfies_marzullo_n3_bound,
    satisfies_theorem2,
)

TRUE_VALUE = 0.0

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
widths = st.floats(min_value=0.01, max_value=20.0, allow_nan=False, allow_infinity=False)


@st.composite
def correct_interval(draw):
    """An interval that contains the true value (a correct sensor reading)."""
    width = draw(widths)
    offset = draw(st.floats(min_value=0.0, max_value=1.0))
    lo = TRUE_VALUE - width * offset
    return Interval(lo, lo + width)


@st.composite
def arbitrary_interval(draw):
    """Any bounded interval (possibly not containing the true value)."""
    lo = draw(finite_floats)
    width = draw(widths)
    return Interval(lo, lo + width)


@st.composite
def mixed_configuration(draw):
    """``n`` intervals of which at most ``f = ceil(n/2) - 1`` are faulty."""
    n = draw(st.integers(min_value=1, max_value=9))
    f = max_safe_fault_bound(n)
    n_faulty = draw(st.integers(min_value=0, max_value=f))
    correct = [draw(correct_interval()) for _ in range(n - n_faulty)]
    faulty = [draw(arbitrary_interval()) for _ in range(n_faulty)]
    order = draw(st.permutations(correct + faulty))
    return list(order), correct, f


@given(mixed_configuration())
@settings(max_examples=200, deadline=None)
def test_fusion_contains_true_value(config):
    intervals, _correct, f = config
    fusion = fuse(intervals, f)
    assert fusion.contains(TRUE_VALUE)


@given(mixed_configuration())
@settings(max_examples=200, deadline=None)
def test_fusion_within_hull_of_correct_intervals(config):
    intervals, correct, f = config
    fusion = fuse(intervals, f)
    hull = convex_hull(correct)
    assert fusion.lo >= hull.lo - 1e-9
    assert fusion.hi <= hull.hi + 1e-9


@given(mixed_configuration())
@settings(max_examples=200, deadline=None)
def test_theorem2_bound_holds(config):
    intervals, correct, f = config
    fusion = fuse(intervals, f)
    assert satisfies_theorem2(fusion, correct)


@given(mixed_configuration())
@settings(max_examples=200, deadline=None)
def test_marzullo_n2_width_bound(config):
    intervals, _correct, f = config
    fusion = fuse(intervals, f)
    assert satisfies_marzullo_n2_bound(fusion, intervals)


@given(st.lists(correct_interval(), min_size=3, max_size=9))
@settings(max_examples=200, deadline=None)
def test_marzullo_n3_width_bound_all_correct(correct):
    # With every interval correct, any f < ceil(n/3) keeps the fusion width
    # below the width of some correct interval.
    n = len(correct)
    f = max(0, math.ceil(n / 3) - 1)
    fusion = fuse(correct, f)
    assert satisfies_marzullo_n3_bound(fusion, correct)


@given(st.lists(correct_interval(), min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_fusion_monotone_in_f(correct):
    n = len(correct)
    previous = None
    for f in range(max_safe_fault_bound(n) + 1):
        fusion = fuse(correct, f)
        if previous is not None:
            assert fusion.lo <= previous.lo + 1e-12
            assert fusion.hi >= previous.hi - 1e-12
        previous = fusion


@given(st.lists(correct_interval(), min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_fusion_with_f0_is_intersection_of_correct(correct):
    fusion = fuse(correct, 0)
    lo = max(s.lo for s in correct)
    hi = min(s.hi for s in correct)
    assert fusion.lo == lo
    assert fusion.hi == hi


@given(st.lists(arbitrary_interval(), min_size=1, max_size=8), st.integers(min_value=0, max_value=7))
@settings(max_examples=200, deadline=None)
def test_fuse_or_none_result_is_subset_of_hull(intervals, f):
    fusion = fuse_or_none(intervals, f)
    if fusion is None:
        return
    hull = convex_hull(intervals)
    assert hull.contains_interval(fusion)


@given(mixed_configuration(), st.floats(min_value=-20, max_value=20))
@settings(max_examples=150, deadline=None)
def test_fusion_translation_equivariance(config, shift):
    intervals, _correct, f = config
    fusion = fuse(intervals, f)
    shifted = fuse([s.shift(shift) for s in intervals], f)
    assert abs(shifted.lo - (fusion.lo + shift)) < 1e-6
    assert abs(shifted.hi - (fusion.hi + shift)) < 1e-6


@given(mixed_configuration())
@settings(max_examples=150, deadline=None)
def test_fusion_order_invariance(config):
    intervals, _correct, f = config
    assert fuse(list(reversed(intervals)), f) == fuse(intervals, f)
