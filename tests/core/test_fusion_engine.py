"""Unit tests for the controller-side FusionEngine."""

import pytest

from repro.core import FaultBoundError, FusionEngine, FusionError, Interval


class TestFusionEngineConfiguration:
    def test_default_f_is_conservative(self):
        assert FusionEngine(5).f == 2
        assert FusionEngine(4).f == 1
        assert FusionEngine(3).f == 1
        assert FusionEngine(2).f == 0

    def test_explicit_f(self):
        assert FusionEngine(5, f=1).f == 1

    def test_invalid_f_rejected(self):
        with pytest.raises(FaultBoundError):
            FusionEngine(4, f=2)

    def test_invalid_n_rejected(self):
        with pytest.raises(FaultBoundError):
            FusionEngine(0)

    def test_repr_mentions_configuration(self):
        assert "n_sensors=4" in repr(FusionEngine(4))


class TestFusionEngineRounds:
    def setup_method(self):
        self.engine = FusionEngine(4, f=1)
        self.intervals = [
            Interval(9.9, 10.1),
            Interval(9.95, 10.15),
            Interval(9.5, 10.5),
            Interval(9.0, 11.0),
        ]

    def test_fuse_matches_marzullo(self):
        fusion = self.engine.fuse(self.intervals)
        assert fusion == Interval(9.9, 10.15)

    def test_wrong_count_rejected(self):
        with pytest.raises(FusionError):
            self.engine.fuse(self.intervals[:3])
        with pytest.raises(FusionError):
            self.engine.process_round(self.intervals + [Interval(0, 1)])

    def test_process_round_outcome_fields(self):
        outcome = self.engine.process_round(self.intervals)
        assert outcome.f == 1
        assert outcome.fusion == Interval(9.9, 10.15)
        assert outcome.width == pytest.approx(0.25)
        assert outcome.estimate == pytest.approx((9.9 + 10.15) / 2)
        assert list(outcome.intervals) == self.intervals

    def test_process_round_detection_clears_honest_sensors(self):
        outcome = self.engine.process_round(self.intervals)
        assert not outcome.detection.any_flagged

    def test_process_round_flags_outlier(self):
        intervals = self.intervals[:3] + [Interval(20.0, 22.0)]
        outcome = self.engine.process_round(intervals)
        assert outcome.detection.flagged_indices == (3,)

    def test_contains_true_value(self):
        outcome = self.engine.process_round(self.intervals)
        assert outcome.contains_true_value(10.0)
        assert not outcome.contains_true_value(11.0)
