"""Unit tests for the overlap-based detection procedure."""

from repro.core import Interval, detect, fuse, is_stealthy_against


class TestDetect:
    def test_all_intersecting_cleared(self):
        intervals = [Interval(0, 2), Interval(1, 3), Interval(1.5, 2.5)]
        fusion = fuse(intervals, 1)
        result = detect(intervals, fusion)
        assert result.flagged_indices == ()
        assert result.cleared_indices == (0, 1, 2)
        assert not result.any_flagged

    def test_disjoint_interval_flagged(self):
        intervals = [Interval(0, 2), Interval(1, 3), Interval(10, 11)]
        fusion = fuse(intervals, 1)
        result = detect(intervals, fusion)
        assert result.flagged_indices == (2,)
        assert result.is_flagged(2)
        assert not result.is_flagged(0)

    def test_touching_interval_not_flagged(self):
        fusion = Interval(0, 1)
        result = detect([Interval(1, 2), Interval(-1, 0)], fusion)
        assert result.flagged_indices == ()

    def test_indices_follow_transmission_order(self):
        fusion = Interval(0, 1)
        intervals = [Interval(5, 6), Interval(0.5, 0.6), Interval(7, 8)]
        result = detect(intervals, fusion)
        assert result.flagged_indices == (0, 2)
        assert result.cleared_indices == (1,)

    def test_empty_input(self):
        result = detect([], Interval(0, 1))
        assert result.flagged_indices == ()
        assert result.cleared_indices == ()


class TestIsStealthyAgainst:
    def test_overlap_is_stealthy(self):
        assert is_stealthy_against(Interval(0.5, 3), Interval(0, 1))

    def test_disjoint_is_detected(self):
        assert not is_stealthy_against(Interval(2, 3), Interval(0, 1))

    def test_touching_is_stealthy(self):
        assert is_stealthy_against(Interval(1, 3), Interval(0, 1))
