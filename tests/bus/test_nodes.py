"""Unit tests for the bus nodes and the message-level round orchestration."""

import numpy as np
import pytest

from repro.attack import ExpectationPolicy, TruthfulPolicy
from repro.bus import AttackerNode, BusRound, ControllerNode, SharedBus
from repro.core import BusError, FusionEngine
from repro.scheduling import AscendingSchedule, DescendingSchedule
from repro.sensors import SensorSuite, ZeroNoise, sensors_from_widths
from repro.vehicle import landshark_suite


def small_suite() -> SensorSuite:
    return SensorSuite(sensors_from_widths([0.2, 1.0, 2.0], noise=ZeroNoise()))


class TestAttackerNode:
    def test_controls(self):
        attacker = AttackerNode(compromised_indices=(1,))
        assert attacker.controls(1)
        assert not attacker.controls(0)

    def test_set_compromised(self):
        attacker = AttackerNode(compromised_indices=())
        attacker.set_compromised((2, 0, 2))
        assert attacker.compromised_indices == (0, 2)

    def test_delta_is_intersection_of_compromised_readings(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        readings = suite.measure_all(10.0, rng)
        attacker = AttackerNode(compromised_indices=(0, 1))
        delta = attacker.delta(readings)
        assert delta == readings[0].interval.intersection(readings[1].interval)

    def test_forge_requires_control(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        readings = suite.measure_all(10.0, rng)
        attacker = AttackerNode(compromised_indices=(0,))
        bus = SharedBus()
        bus.start_round(0)
        with pytest.raises(BusError):
            attacker.forge(bus, 0, 0, 2, suite, readings, (2, 1, 0), 1, rng)


class TestControllerNode:
    def test_process_requires_all_messages(self):
        controller = ControllerNode(FusionEngine(3, 1))
        bus = SharedBus()
        bus.start_round(0)
        with pytest.raises(BusError):
            controller.process(bus, 0)


class TestBusRound:
    def test_round_without_attack(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        bus = SharedBus()
        round_ = BusRound(suite, AscendingSchedule())
        result = round_.run(bus, true_value=10.0, rng=rng)
        assert len(result.messages) == 3
        assert result.fusion.contains(10.0)
        assert not result.detection.any_flagged
        # With ZeroNoise every broadcast interval is centred on the truth.
        for interval in result.broadcast_by_sensor.values():
            assert interval.center == pytest.approx(10.0)

    def test_round_indices_increment(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        bus = SharedBus()
        round_ = BusRound(suite, AscendingSchedule())
        first = round_.run(bus, 10.0, rng)
        second = round_.run(bus, 10.0, rng)
        assert first.round_index == 0
        assert second.round_index == 1
        assert len(bus.messages(0)) == 3
        assert len(bus.messages(1)) == 3

    def test_schedule_controls_slot_order(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        bus = SharedBus()
        round_ = BusRound(suite, DescendingSchedule())
        result = round_.run(bus, 10.0, rng)
        assert result.order == (2, 1, 0)
        assert [m.sensor_index for m in result.messages] == [2, 1, 0]

    def test_attacked_round_stays_stealthy(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        bus = SharedBus()
        attacker = AttackerNode(compromised_indices=(0,), policy=ExpectationPolicy())
        round_ = BusRound(suite, DescendingSchedule(), attacker)
        result = round_.run(bus, 10.0, rng)
        assert not result.detection.any_flagged
        assert result.fusion.contains(10.0)
        assert result.attacker_modes[0] is not None

    def test_matches_fast_round_simulator_with_truthful_attacker(self):
        rng = np.random.default_rng(0)
        suite = small_suite()
        bus = SharedBus()
        attacker = AttackerNode(compromised_indices=(0,), policy=TruthfulPolicy())
        round_ = BusRound(suite, AscendingSchedule(), attacker)
        result = round_.run(bus, 10.0, rng)
        from repro.core import fuse

        expected = fuse([r.interval for r in result.readings], 1)
        assert result.fusion == expected

    def test_landshark_suite_round(self):
        rng = np.random.default_rng(0)
        suite = landshark_suite()
        bus = SharedBus()
        round_ = BusRound(suite, AscendingSchedule())
        result = round_.run(bus, 10.0, rng)
        assert len(result.messages) == 4
        assert result.fusion.contains(10.0)
