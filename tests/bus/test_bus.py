"""Unit tests for the shared broadcast bus and its messages."""

import pytest

from repro.bus import BusMessage, SharedBus
from repro.core import BusError, Interval


def message(slot: int, round_index: int = 0, sender: str = "gps") -> BusMessage:
    return BusMessage(
        sender=sender, sensor_index=0, slot=slot, round_index=round_index, interval=Interval(0, 1)
    )


class TestBusMessage:
    def test_valid_message(self):
        m = message(0)
        assert m.sender == "gps"
        assert m.interval == Interval(0, 1)

    def test_empty_sender_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="", sensor_index=0, slot=0, round_index=0, interval=Interval(0, 1))

    def test_negative_slot_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=0, slot=-1, round_index=0, interval=Interval(0, 1))

    def test_negative_round_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=0, slot=0, round_index=-1, interval=Interval(0, 1))

    def test_negative_sensor_index_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=-1, slot=0, round_index=0, interval=Interval(0, 1))


class TestSharedBus:
    def test_broadcast_appends_to_log(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.broadcast(message(1, sender="camera"))
        assert len(bus) == 2
        assert bus.senders() == ["gps", "camera"]

    def test_slot_discipline(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        with pytest.raises(BusError):
            bus.broadcast(message(0))  # slot reuse
        with pytest.raises(BusError):
            bus.broadcast(message(2))  # slot skipped

    def test_round_discipline(self):
        bus = SharedBus()
        bus.start_round(0)
        with pytest.raises(BusError):
            bus.broadcast(message(0, round_index=3))

    def test_round_filtering(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.start_round(1)
        bus.broadcast(message(0, round_index=1, sender="camera"))
        assert [m.sender for m in bus.messages(0)] == ["gps"]
        assert [m.sender for m in bus.messages(1)] == ["camera"]
        assert bus.messages_this_round()[0].sender == "camera"

    def test_subscribers_notified_in_order(self):
        bus = SharedBus()
        seen = []
        bus.subscribe(lambda m: seen.append(m.sender))
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.broadcast(message(1, sender="camera"))
        assert seen == ["gps", "camera"]

    def test_clear_resets_state(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.clear()
        assert len(bus) == 0
        assert bus.current_round == 0
        assert bus.next_slot == 0

    def test_start_round_returns_index(self):
        bus = SharedBus()
        assert bus.start_round() == 0
        bus.broadcast(message(0))
        assert bus.start_round() == 1


class TestRoundDiscipline:
    """start_round must reject *any* new round mid-slot, skip-ahead included."""

    def open_round(self, expected_slots=3):
        bus = SharedBus()
        bus.start_round(0, expected_slots=expected_slots)
        bus.broadcast(message(0))
        return bus

    @pytest.mark.parametrize("round_index", [0, 1, 5, None], ids=["replay", "next", "skip", "auto"])
    def test_mid_round_start_rejected_for_any_index(self, round_index):
        # The regression: skip-ahead (round_index > current) used to slip
        # through the `round_index <= current` check and silently abandon
        # the open round's remaining slots.
        bus = self.open_round()
        with pytest.raises(BusError, match="still open at slot 1 of 3"):
            bus.start_round(round_index)

    def test_completed_round_allows_any_successor(self):
        bus = self.open_round(expected_slots=1)
        assert bus.start_round(7, expected_slots=2) == 7

    def test_fresh_bus_with_expected_slots(self):
        bus = SharedBus()
        assert bus.start_round(expected_slots=5) == 0
        assert bus.next_slot == 0

    def test_broadcast_beyond_expected_slots_rejected(self):
        bus = SharedBus()
        bus.start_round(0, expected_slots=2)
        bus.broadcast(message(0))
        bus.broadcast(message(1))
        with pytest.raises(BusError, match="only has 2 slot"):
            bus.broadcast(message(2))

    @pytest.mark.parametrize("expected_slots", [0, -1])
    def test_non_positive_expected_slots_rejected(self, expected_slots):
        with pytest.raises(BusError, match="expected_slots"):
            SharedBus().start_round(0, expected_slots=expected_slots)

    def test_legacy_behaviour_without_expected_slots(self):
        # Without a declared slot count the bus cannot distinguish a
        # finished round from an abandoned one, so only replays (index at
        # or below the current round) are rejected mid-transmission.
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        with pytest.raises(BusError):
            bus.start_round(0)
        assert bus.start_round(3) == 3  # historical skip-ahead tolerance


class TestSubscriberLifecycle:
    def test_unsubscribe_stops_notifications(self):
        bus = SharedBus()
        seen = []
        callback = lambda m: seen.append(m.sender)  # noqa: E731
        bus.subscribe(callback)
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.unsubscribe(callback)
        bus.broadcast(message(1, sender="camera"))
        assert seen == ["gps"]

    def test_unsubscribe_unknown_callback_rejected(self):
        bus = SharedBus()
        with pytest.raises(BusError, match="not subscribed"):
            bus.unsubscribe(lambda m: None)

    def test_clear_keeps_subscribers_by_default(self):
        # The documented contract: a harness rerunning experiments over the
        # same wired-up nodes clears the log, not the wiring.
        bus = SharedBus()
        seen = []
        bus.subscribe(lambda m: seen.append(m.sender))
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.clear()
        bus.start_round(0)
        bus.broadcast(message(0, sender="camera"))
        assert seen == ["gps", "camera"]

    def test_clear_can_drop_subscribers(self):
        bus = SharedBus()
        seen = []
        bus.subscribe(lambda m: seen.append(m.sender))
        bus.clear(drop_subscribers=True)
        bus.start_round(0)
        bus.broadcast(message(0))
        assert seen == []

    def test_clear_resets_expected_slots(self):
        bus = SharedBus()
        bus.start_round(0, expected_slots=2)
        bus.broadcast(message(0))
        bus.clear()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.broadcast(message(1))
        bus.broadcast(message(2))  # no slot bound survives the clear
        assert len(bus) == 3
