"""Unit tests for the shared broadcast bus and its messages."""

import pytest

from repro.bus import BusMessage, SharedBus
from repro.core import BusError, Interval


def message(slot: int, round_index: int = 0, sender: str = "gps") -> BusMessage:
    return BusMessage(
        sender=sender, sensor_index=0, slot=slot, round_index=round_index, interval=Interval(0, 1)
    )


class TestBusMessage:
    def test_valid_message(self):
        m = message(0)
        assert m.sender == "gps"
        assert m.interval == Interval(0, 1)

    def test_empty_sender_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="", sensor_index=0, slot=0, round_index=0, interval=Interval(0, 1))

    def test_negative_slot_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=0, slot=-1, round_index=0, interval=Interval(0, 1))

    def test_negative_round_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=0, slot=0, round_index=-1, interval=Interval(0, 1))

    def test_negative_sensor_index_rejected(self):
        with pytest.raises(BusError):
            BusMessage(sender="s", sensor_index=-1, slot=0, round_index=0, interval=Interval(0, 1))


class TestSharedBus:
    def test_broadcast_appends_to_log(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.broadcast(message(1, sender="camera"))
        assert len(bus) == 2
        assert bus.senders() == ["gps", "camera"]

    def test_slot_discipline(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        with pytest.raises(BusError):
            bus.broadcast(message(0))  # slot reuse
        with pytest.raises(BusError):
            bus.broadcast(message(2))  # slot skipped

    def test_round_discipline(self):
        bus = SharedBus()
        bus.start_round(0)
        with pytest.raises(BusError):
            bus.broadcast(message(0, round_index=3))

    def test_round_filtering(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.start_round(1)
        bus.broadcast(message(0, round_index=1, sender="camera"))
        assert [m.sender for m in bus.messages(0)] == ["gps"]
        assert [m.sender for m in bus.messages(1)] == ["camera"]
        assert bus.messages_this_round()[0].sender == "camera"

    def test_subscribers_notified_in_order(self):
        bus = SharedBus()
        seen = []
        bus.subscribe(lambda m: seen.append(m.sender))
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.broadcast(message(1, sender="camera"))
        assert seen == ["gps", "camera"]

    def test_clear_resets_state(self):
        bus = SharedBus()
        bus.start_round(0)
        bus.broadcast(message(0))
        bus.clear()
        assert len(bus) == 0
        assert bus.current_round == 0
        assert bus.next_slot == 0

    def test_start_round_returns_index(self):
        bus = SharedBus()
        assert bus.start_round() == 0
        bus.broadcast(message(0))
        assert bus.start_round() == 1
