"""`LossyBus`: a channel realization replayed at the message level.

The hand-built realization pins each delivery fate precisely (immediate,
delayed-in-time, delayed-past-end, lost-and-retransmitted, lost-for-good);
the `realize_channel` integration test then checks that the message-level
accounting agrees with the array-level counters for arbitrary draws.
"""

import numpy as np
import pytest

from repro import obs
from repro.bus import BusMessage, LossyBus, SharedBus
from repro.channel import ChannelRealization, ChannelSpec, realize_channel
from repro.core import BusError, Interval


def message(slot: int, round_index: int = 0) -> BusMessage:
    return BusMessage(
        sender=f"sensor-{slot}",
        sensor_index=slot,
        slot=slot,
        round_index=round_index,
        interval=Interval(0, 1),
    )


def hand_realization() -> ChannelRealization:
    """One round, five slots, every delivery fate represented.

    slot 0: clean immediate delivery
    slot 1: lost, retry succeeds (delivered at close, from a tail slot)
    slot 2: delayed to slot 4 — in time, delivered when slot 4 transmits...
            actually delivered once a slot > 4 observes it, i.e. at close
    slot 3: delayed past the round's delivery window — dropped
    slot 4: lost, retry also lost — dropped
    """
    return ChannelRealization(
        spec=ChannelSpec(loss=0.4, delay=0.5, max_delay=3, retransmit_budget=2),
        lost=np.array([[False, True, False, False, True]]),
        arrival=np.array([[0, 1, 4, 9, 4]]),
        received=np.array([[True, True, True, False, False]]),
        dropped=np.array([2]),
        retransmits=np.array([2]),
    )


class TestDelivery:
    def test_full_round_delivery_order_and_accounting(self):
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        delivered = []
        lossy.subscribe(lambda m: delivered.append(m.slot))
        for slot in range(5):
            lossy.broadcast(message(slot))
        # In-round: only slot 0 has arrived before the last transmission.
        assert delivered == [0]
        fusion_set = lossy.close_round()
        # Close flushes the delayed slot 2 and replays slot 1's retry.
        assert delivered == [0, 2, 1]
        assert [m.slot for m in fusion_set] == [0, 2, 1]
        assert sorted(m.slot for m in lossy.dropped) == [3, 4]
        assert len(lossy.dropped) == int(hand_realization().dropped[0])
        assert len(lossy) == 3

    def test_delayed_message_held_until_arrival(self):
        # arrival=4 means visible in slots strictly after 4 — a node acting
        # in slot 3 or 4 has not heard it yet.
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        heard = []
        lossy.subscribe(lambda m: heard.append(m.slot))
        for slot in range(5):
            lossy.broadcast(message(slot))
            assert 2 not in heard  # arrival slot 4 is never < slot <= 4
        lossy.close_round()
        assert 2 in heard

    def test_physical_bus_logs_every_transmission(self):
        # Loss is a delivery property, not a transmission property: the
        # shared medium's log keeps all five slots in order.
        physical = SharedBus()
        lossy = LossyBus(hand_realization(), bus=physical)
        lossy.start_round()
        for slot in range(5):
            lossy.broadcast(message(slot))
        assert [m.slot for m in physical] == [0, 1, 2, 3, 4]

    def test_visible_matches_the_realization_view(self):
        realization = hand_realization()
        lossy = LossyBus(realization)
        lossy.start_round()
        view = realization.row(0)
        for slot in range(5):
            lossy.broadcast(message(slot))
        for slot in range(6):
            expected = [s for s in range(min(slot, 5)) if view.visible_at(slot)[s]]
            assert [m.slot for m in lossy.visible(slot)] == expected

    def test_iteration_covers_delivered_messages(self):
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        for slot in range(5):
            lossy.broadcast(message(slot))
        lossy.close_round()
        assert [m.slot for m in lossy] == [m.slot for m in lossy.delivered]


class TestDiscipline:
    def test_row_out_of_range_rejected(self):
        with pytest.raises(BusError, match="row 3"):
            LossyBus(hand_realization(), row=3)

    def test_slot_beyond_realization_rejected(self):
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        with pytest.raises(BusError, match="5 slot"):
            lossy.broadcast(message(7))

    def test_closed_round_rejects_broadcasts(self):
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        lossy.broadcast(message(0))
        lossy.close_round()
        with pytest.raises(BusError, match="closed"):
            lossy.broadcast(message(1))

    def test_close_round_is_idempotent(self):
        lossy = LossyBus(hand_realization())
        lossy.start_round()
        for slot in range(5):
            lossy.broadcast(message(slot))
        assert lossy.close_round() == lossy.close_round()

    def test_start_round_declares_the_slot_count(self):
        # The LossyBus knows its schedule length, so the physical bus gets
        # the strict (skip-ahead-proof) round discipline for free.
        lossy = LossyBus(hand_realization())
        lossy.start_round(0)
        lossy.broadcast(message(0))
        with pytest.raises(BusError, match="still open"):
            lossy.bus.start_round(9)


class TestObs:
    def test_close_emits_channel_counters_once(self):
        with obs.collect() as session:
            lossy = LossyBus(hand_realization())
            lossy.start_round()
            for slot in range(5):
                lossy.broadcast(message(slot))
            lossy.close_round()
            lossy.close_round()  # idempotent: no double counting
        counters = {
            (row["name"], row["labels"]["component"]): row["value"]
            for row in session.snapshot()["metrics"]["counters"]
        }
        assert counters[("repro_channel_dropped_total", "bus")] == 2
        assert counters[("repro_channel_retransmits_total", "bus")] == 2


class TestRealizationIntegration:
    @pytest.mark.parametrize("row", [0, 3, 11])
    def test_message_accounting_matches_array_counters(self, row):
        spec = ChannelSpec(loss=0.35, delay=0.3, max_delay=2, retransmit_budget=2)
        realization = realize_channel(spec, 12, 6, np.random.default_rng(7))
        lossy = LossyBus(realization, row=row % realization.batch)
        lossy.start_round()
        for slot in range(6):
            lossy.broadcast(message(slot))
        fusion_set = lossy.close_round()
        view = realization.row(row % realization.batch)
        assert sorted(m.slot for m in fusion_set) == list(np.flatnonzero(view.received))
        assert len(lossy.dropped) == int(realization.dropped[row % realization.batch])
        for slot in range(7):
            visible = {m.slot for m in lossy.visible(slot)}
            assert visible == set(np.flatnonzero(view.visible_at(slot)))
