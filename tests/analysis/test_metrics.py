"""Unit tests for the aggregate metrics."""

import pytest

from repro.analysis import containment_rate, summarize_widths, violation_rates
from repro.core import ExperimentError, Interval


class TestSummarizeWidths:
    def test_basic_statistics(self):
        stats = summarize_widths([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean_width == pytest.approx(2.5)
        assert stats.min_width == 1.0
        assert stats.max_width == 4.0
        assert stats.median_width == pytest.approx(2.5)

    def test_single_value(self):
        stats = summarize_widths([2.0])
        assert stats.std_width == 0.0
        assert stats.mean_width == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize_widths([])

    def test_as_dict_keys(self):
        assert set(summarize_widths([1.0]).as_dict()) == {"count", "mean", "std", "min", "max", "median"}


class TestViolationRates:
    def test_rates(self):
        fusions = [Interval(9.8, 10.2), Interval(9.4, 10.2), Interval(9.8, 10.8), Interval(9.0, 11.0)]
        upper, lower = violation_rates(fusions, upper_limit=10.5, lower_limit=9.5)
        assert upper == pytest.approx(0.5)
        assert lower == pytest.approx(0.5)

    def test_boundaries_not_violations(self):
        upper, lower = violation_rates([Interval(9.5, 10.5)], 10.5, 9.5)
        assert upper == 0.0
        assert lower == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            violation_rates([], 1.0, 0.0)


class TestContainmentRate:
    def test_full_containment(self):
        fusions = [Interval(0, 2), Interval(1, 3)]
        assert containment_rate(fusions, [1.0, 2.0]) == 1.0

    def test_partial_containment(self):
        fusions = [Interval(0, 2), Interval(1, 3)]
        assert containment_rate(fusions, [1.0, 5.0]) == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            containment_rate([Interval(0, 1)], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            containment_rate([], [])
