"""Unit tests for the canonical experiment configurations."""


from repro.analysis import (
    TABLE1_CONFIGURATIONS,
    TABLE1_PAPER_RESULTS,
    TABLE2_PAPER_RESULTS,
    TABLE2_SCHEDULES,
    figure1_intervals,
    figure2_configuration,
    figure5a_configuration,
    figure5b_configuration,
)
from repro.core import fuse, max_safe_fault_bound


class TestTable1Configurations:
    def test_eight_rows(self):
        assert len(TABLE1_CONFIGURATIONS) == 8

    def test_lengths_match_counts(self):
        for entry in TABLE1_CONFIGURATIONS:
            assert len(entry.lengths) == entry.n
            assert 1 <= entry.fa <= max_safe_fault_bound(entry.n)

    def test_paper_descending_never_below_ascending(self):
        for entry in TABLE1_CONFIGURATIONS:
            assert entry.paper_descending >= entry.paper_ascending

    def test_lookup_table(self):
        entry = TABLE1_CONFIGURATIONS[0]
        assert TABLE1_PAPER_RESULTS[(entry.n, entry.fa, entry.lengths)] == (
            entry.paper_ascending,
            entry.paper_descending,
        )

    def test_comparison_config_construction(self):
        config = TABLE1_CONFIGURATIONS[0].comparison_config(positions=3)
        assert config.lengths == TABLE1_CONFIGURATIONS[0].lengths
        assert config.positions == 3


class TestTable2Constants:
    def test_schedule_names(self):
        assert [s.name for s in TABLE2_SCHEDULES] == ["ascending", "descending", "random"]

    def test_paper_results_keys(self):
        assert set(TABLE2_PAPER_RESULTS) == {"ascending", "descending", "random"}
        assert TABLE2_PAPER_RESULTS["ascending"] == (0.0, 0.0)


class TestFigureConfigurations:
    def test_figure1_fusable_for_all_f(self):
        intervals = figure1_intervals()
        widths = [fuse(intervals, f).width for f in (0, 1, 2)]
        assert widths == sorted(widths)
        assert widths[0] < widths[2]

    def test_figure2_fields(self):
        config = figure2_configuration()
        assert {"s1", "s2_left", "s2_right", "attacked_width", "f"} <= set(config)

    def test_figure5_configurations_have_attacked_reading(self):
        for config in (figure5a_configuration(), figure5b_configuration()):
            assert "attacked_width" in config
            assert config["f"] == 1
