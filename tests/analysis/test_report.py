"""Unit tests for the plain-text report formatting."""

import pytest

from repro.analysis import format_percentage, format_table, format_table1_row
from repro.core import ExperimentError


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.50" in text
        assert "x" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = text.splitlines()
        # All rows have the same rendered width.
        assert len({len(line) for line in lines}) == 1

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ExperimentError):
            format_table([], [])

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert not text.startswith("\n")


class TestPaperFormatting:
    def test_table1_row_label(self):
        label = format_table1_row(3, 1, [5.0, 11.0, 17.0])
        assert label == "n = 3, fa = 1, L = {5, 11, 17}"

    def test_percentage(self):
        assert format_percentage(17.4213) == "17.42%"
        assert format_percentage(0.0) == "0.00%"
