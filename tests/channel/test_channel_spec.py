"""Validation and serialisation of :class:`repro.channel.ChannelSpec`."""

import pytest

from repro.channel import CHANNEL_MODELS, ChannelSpec, channel_spec_from_dict
from repro.core.exceptions import ExperimentError


class TestValidation:
    def test_defaults_are_the_perfect_channel(self):
        spec = ChannelSpec()
        assert spec.model == "iid"
        assert spec.loss == 0.0
        assert spec.delay == 0.0
        assert spec.retransmit_budget == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown channel model"):
            ChannelSpec(model="quantum")
        assert "iid" in CHANNEL_MODELS and "gilbert-elliott" in CHANNEL_MODELS

    @pytest.mark.parametrize(
        "field", ["loss", "good_to_bad", "bad_to_good", "loss_good", "loss_bad", "delay"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), "0.5", True, None])
    def test_probability_fields_validated(self, field, value):
        with pytest.raises(ExperimentError, match=field):
            ChannelSpec(**{field: value})

    @pytest.mark.parametrize("value", [0, -1, 1.5, "2", True, None])
    def test_max_delay_must_be_positive_int(self, value):
        with pytest.raises(ExperimentError, match="max_delay"):
            ChannelSpec(max_delay=value)

    @pytest.mark.parametrize("value", [-1, 0.5, "1", True, None])
    def test_retransmit_budget_must_be_non_negative_int(self, value):
        with pytest.raises(ExperimentError, match="retransmit_budget"):
            ChannelSpec(retransmit_budget=value)

    def test_frozen_and_hashable(self):
        spec = ChannelSpec(loss=0.2)
        assert hash(spec) == hash(ChannelSpec(loss=0.2))
        with pytest.raises(Exception):
            spec.loss = 0.5


class TestWire:
    def test_to_dict_round_trips(self):
        spec = ChannelSpec(
            model="gilbert-elliott",
            good_to_bad=0.1,
            bad_to_good=0.7,
            loss_good=0.02,
            loss_bad=0.9,
            delay=0.3,
            max_delay=4,
            retransmit_budget=2,
        )
        assert channel_spec_from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(ExperimentError, match="jitter"):
            channel_spec_from_dict({"model": "iid", "jitter": 0.5})

    def test_non_dict_rejected(self):
        with pytest.raises(ExperimentError, match="object"):
            channel_spec_from_dict("iid")

    def test_spec_instances_pass_through(self):
        spec = ChannelSpec(loss=0.1)
        assert channel_spec_from_dict(spec) is spec
