"""Semantics of :func:`repro.channel.realize_channel`.

Pins the locked channel contract the engines build on: the accounting
invariants between ``lost`` / ``arrival`` / ``received`` and the
``dropped`` / ``retransmits`` counters, the visibility rule (a delayed
message is invisible until it lands, retransmissions never visible
in-round), the edge-case channels (loss 0 and 1), and the spawned-stream
RNG discipline that keeps channel-free payloads bit-identical.
"""

import numpy as np
import pytest

from repro.channel import ChannelRealization, ChannelSpec, realize_channel
from repro.utils.seeding import spawn_rng


def rng(seed=2014):
    return np.random.default_rng(seed)


IID = ChannelSpec(model="iid", loss=0.3, delay=0.25, max_delay=3, retransmit_budget=2)
BURST = ChannelSpec(
    model="gilbert-elliott",
    good_to_bad=0.2,
    bad_to_good=0.4,
    loss_good=0.05,
    loss_bad=0.8,
    retransmit_budget=1,
)


class TestAccounting:
    @pytest.mark.parametrize("spec", [IID, BURST], ids=["iid", "burst"])
    def test_shapes_and_dtypes(self, spec):
        realization = realize_channel(spec, 50, 7, rng())
        assert realization.lost.shape == (50, 7)
        assert realization.arrival.shape == (50, 7)
        assert realization.received.shape == (50, 7)
        assert realization.dropped.shape == (50,)
        assert realization.retransmits.shape == (50,)
        assert realization.batch == 50 and realization.n == 7

    @pytest.mark.parametrize("spec", [IID, BURST], ids=["iid", "burst"])
    def test_dropped_complements_received(self, spec):
        realization = realize_channel(spec, 200, 5, rng())
        np.testing.assert_array_equal(
            realization.dropped, 5 - realization.received.sum(axis=1)
        )
        np.testing.assert_array_equal(
            realization.received_counts(), realization.received.sum(axis=1)
        )

    @pytest.mark.parametrize("spec", [IID, BURST], ids=["iid", "burst"])
    def test_retransmits_bounded_by_budget_and_losses(self, spec):
        realization = realize_channel(spec, 200, 5, rng())
        lost_counts = realization.lost.sum(axis=1)
        assert (realization.retransmits <= spec.retransmit_budget).all()
        assert (realization.retransmits <= lost_counts).all()
        np.testing.assert_array_equal(
            realization.retransmits, np.minimum(lost_counts, spec.retransmit_budget)
        )

    def test_perfect_channel_delivers_everything(self):
        realization = realize_channel(ChannelSpec(), 40, 6, rng())
        assert realization.received.all()
        assert not realization.lost.any()
        assert (realization.dropped == 0).all()
        assert (realization.retransmits == 0).all()
        np.testing.assert_array_equal(
            realization.arrival, np.broadcast_to(np.arange(6), (40, 6))
        )

    def test_total_loss_without_budget_drops_everything(self):
        realization = realize_channel(ChannelSpec(loss=1.0), 40, 6, rng())
        assert realization.lost.all()
        assert not realization.received.any()
        assert (realization.dropped == 6).all()

    def test_total_loss_eats_the_whole_budget(self):
        # Retries are subject to the same loss process, so loss=1 kills them.
        realization = realize_channel(
            ChannelSpec(loss=1.0, retransmit_budget=3), 40, 6, rng()
        )
        assert (realization.retransmits == 3).all()
        assert not realization.received.any()

    def test_lossless_retries_recover_every_budgeted_loss(self):
        # loss_good=0, loss_bad=1, stuck in the bad state for the first n
        # slots cannot happen with bad_to_good=1: the chain alternates, so
        # use iid instead: every lost slot whose rank fits the budget is
        # recovered iff its tail slot's uniform spares it — with loss<1 some
        # retries succeed; with budget >= n and a second realization where
        # tail draws never fire, received == ~lost | retried.
        spec = ChannelSpec(loss=0.4, retransmit_budget=8)
        realization = realize_channel(spec, 300, 4, rng())
        # Budget of 8 >= n=4 covers every loss; a message is dropped only if
        # its retry was also lost.
        recovered = realization.lost & realization.received
        assert recovered.any()
        assert (realization.retransmits == realization.lost.sum(axis=1)).all()


class TestVisibility:
    def test_no_delay_means_visible_next_slot(self):
        realization = realize_channel(ChannelSpec(loss=0.3), 100, 5, rng())
        for slot in range(5):
            visible = realization.visible(slot)
            np.testing.assert_array_equal(visible, ~realization.lost[:, :slot])

    def test_delayed_messages_hidden_until_arrival(self):
        spec = ChannelSpec(delay=1.0, max_delay=4)
        realization = realize_channel(spec, 100, 5, rng())
        assert (realization.arrival > np.arange(5)).all()  # every slot delayed
        for slot in range(5):
            visible = realization.visible(slot)
            np.testing.assert_array_equal(
                visible, realization.arrival[:, :slot] < slot
            )

    def test_visible_counts_table_matches_per_slot_masks(self):
        realization = realize_channel(IID, 120, 6, rng())
        table = realization.visible_counts()
        assert table.shape == (120, 7)
        for slot in range(7):
            if slot < 6:
                np.testing.assert_array_equal(
                    table[:, slot], realization.visible(slot).sum(axis=1)
                )
        np.testing.assert_array_equal(
            table[:, 6],
            (~realization.lost & (realization.arrival < 6)).sum(axis=1),
        )

    def test_row_view_matches_batch_slices(self):
        realization = realize_channel(IID, 20, 5, rng())
        for index in (0, 7, 19):
            view = realization.row(index)
            np.testing.assert_array_equal(view.lost, realization.lost[index])
            np.testing.assert_array_equal(view.arrival, realization.arrival[index])
            np.testing.assert_array_equal(view.received, realization.received[index])
            for slot in range(5):
                np.testing.assert_array_equal(
                    view.visible_at(slot), realization.visible(slot)[index]
                )


class TestConcat:
    def test_concat_stacks_rows(self):
        a = realize_channel(IID, 10, 5, rng(1))
        b = realize_channel(IID, 15, 5, rng(2))
        packed = ChannelRealization.concat([a, b])
        assert packed.batch == 25
        np.testing.assert_array_equal(packed.lost[:10], a.lost)
        np.testing.assert_array_equal(packed.lost[10:], b.lost)
        np.testing.assert_array_equal(packed.dropped[10:], b.dropped)
        np.testing.assert_array_equal(packed.retransmits[:10], a.retransmits)

    def test_concat_rejects_mixed_specs(self):
        a = realize_channel(IID, 10, 5, rng(1))
        b = realize_channel(BURST, 10, 5, rng(2))
        with pytest.raises(ValueError, match="distinct specs"):
            ChannelRealization.concat([a, b])


class TestRngDiscipline:
    def test_identical_streams_realize_identically(self):
        a = realize_channel(IID, 30, 5, rng())
        b = realize_channel(IID, 30, 5, rng())
        np.testing.assert_array_equal(a.lost, b.lost)
        np.testing.assert_array_equal(a.arrival, b.arrival)
        np.testing.assert_array_equal(a.received, b.received)

    def test_spawning_leaves_the_parent_stream_untouched(self):
        # The engine-seam contract: realizing a channel from a spawned child
        # must not advance the parent generator, so channel-free payloads
        # stay bit-identical.
        parent = rng()
        realize_channel(IID, 30, 5, spawn_rng(parent))
        np.testing.assert_array_equal(rng().random(16), parent.random(16))

    def test_burst_state_chain_uses_stationary_start(self):
        # A degenerate chain that can never enter the bad state loses
        # nothing regardless of loss_bad.
        spec = ChannelSpec(
            model="gilbert-elliott",
            good_to_bad=0.0,
            bad_to_good=1.0,
            loss_good=0.0,
            loss_bad=1.0,
        )
        realization = realize_channel(spec, 50, 6, rng())
        assert not realization.lost.any()

    def test_burst_absorbing_bad_state_loses_everything(self):
        spec = ChannelSpec(
            model="gilbert-elliott",
            good_to_bad=1.0,
            bad_to_good=0.0,
            loss_good=0.0,
            loss_bad=1.0,
        )
        realization = realize_channel(spec, 50, 6, rng())
        assert realization.lost.all()
