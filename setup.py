"""Setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that legacy editable installs (``pip install -e . --no-use-pep517``)
work in offline environments whose setuptools lacks the ``wheel`` package
needed for PEP 660 editable wheels.
"""

from setuptools import setup

setup()
